#pragma once
/// \file profile.hpp
/// TunedProfile (DESIGN.md §15): the versioned JSON artifact the offline
/// search emits and any bench / the engine loads. A profile is a list of
/// entries keyed by (graph shape, cluster shape); lookup is exact-match
/// first, nearest-shape otherwise, so a profile tuned at one scale still
/// seeds a sensible configuration two scales up.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bfs/config.hpp"
#include "runtime/coll_model.hpp"

namespace numabfs::engine {
struct EngineConfig;
struct FrontDoorConfig;
}  // namespace numabfs::engine
namespace numabfs::bfs2d {
struct Bfs2dOptions;
}  // namespace numabfs::bfs2d

namespace numabfs::tune {

inline constexpr const char* kProfileSchema = "numabfs.tuned_profile.v1";

/// The key the search tuned for: graph shape x cluster shape.
struct ShapeKey {
  int scale = 0;       ///< log2(vertices) of the R-MAT graph
  int edgefactor = 16;
  int nodes = 1;
  int ppn = 1;

  bool operator==(const ShapeKey&) const = default;
};

/// The total order nearest() breaks distance ties with: lexicographic on
/// (nodes, ppn, scale, edgefactor) — the same dominance order as the
/// distance weights, smallest shape first. Ties therefore resolve to the
/// same entry no matter how the profile's entry list is ordered.
inline bool shape_less(const ShapeKey& a, const ShapeKey& b) {
  if (a.nodes != b.nodes) return a.nodes < b.nodes;
  if (a.ppn != b.ppn) return a.ppn < b.ppn;
  if (a.scale != b.scale) return a.scale < b.scale;
  return a.edgefactor < b.edgefactor;
}

/// One tuned operating point.
struct ProfileEntry {
  ShapeKey shape;
  std::string objective;  ///< metric key the score is in ("harmonic_teps", "qps")
  double score = 0.0;     ///< objective value the search measured
  bfs::Config config;     ///< every BFS knob, including TuneOptions
  std::string decomposition = "1d";  ///< "1d" | "2d"
  rt::coll_model::HierLevel hier = rt::coll_model::HierLevel::flat;  ///< 2-D
  int batch = 0;          ///< engine lanes per wave (0 = not tuned)
};

struct TunedProfile {
  std::string schema = kProfileSchema;
  std::vector<ProfileEntry> entries;

  /// Exact shape match (first wins), or nullptr.
  const ProfileEntry* find(const ShapeKey& k) const;
  /// Exact match if present, else the entry minimizing a weighted log-space
  /// shape distance; nullptr only when the profile is empty. Equidistant
  /// entries resolve deterministically by shape_less (smallest shape wins),
  /// independent of the order entries appear in the profile.
  const ProfileEntry* nearest(const ShapeKey& k) const;

  std::string json() const;
  /// Parses and validates (schema string, entry configs). Throws
  /// std::runtime_error with a position-bearing message on malformed input.
  static TunedProfile parse(const std::string& text);

  void write(const std::string& path) const;
  static TunedProfile load(const std::string& path);
};

/// Apply helpers: copy an entry's knobs onto each consumer's option struct.
/// Only the fields an entry actually tunes are touched.
bfs::Config to_bfs_config(const ProfileEntry& e);
void apply(const ProfileEntry& e, bfs2d::Bfs2dOptions& o);
void apply(const ProfileEntry& e, engine::EngineConfig& ec);
void apply(const ProfileEntry& e, engine::FrontDoorConfig& fdc);

}  // namespace numabfs::tune
