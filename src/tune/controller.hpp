#pragma once
/// \file controller.hpp
/// Online per-level adaptive control (DESIGN.md §15): the codec gate's
/// allreduced-measurement pattern generalized into a reusable decision
/// framework. A controller keeps a *trailing window* of measured state and
/// picks the knob value minimizing the predicted cost of the next level,
/// with hysteresis and a dwell so decisions don't flap.
///
/// Determinism contract: every input a controller consumes must be either
/// rank-uniform (shapes, unit-cost models) or an *allreduced* measurement,
/// so all SPMD ranks step identical controller state and reach identical
/// decisions — the same contract the codec gate already obeys. Controllers
/// are plain value types with no clock or RNG access; a rerun under the
/// same (graph, config, fault plan) replays bit-identical choices.
///
/// Header-only on purpose: the BFS drivers consume these classes without a
/// library dependency on numabfs_tune (which links back against the BFS
/// stacks for profile application).

#include <cstdint>
#include <span>
#include <vector>

namespace numabfs::tune {

/// Switching discipline shared by every knob.
struct KnobPolicy {
  double hysteresis = 0.15;  ///< relative advantage required to switch
  int dwell = 2;             ///< levels a fresh choice is held before review
};

/// One discrete knob. Choice indices are caller-defined (e.g. an index into
/// a candidate-K list). decide() is argmin-with-hysteresis: the incumbent
/// is kept unless a challenger's predicted cost beats it by the hysteresis
/// margin *and* the dwell from the last switch has expired.
class KnobArbiter {
 public:
  KnobArbiter() = default;
  KnobArbiter(int initial, KnobPolicy pol) : cur_(initial), pol_(pol) {}

  /// `costs[i]` = predicted cost of choice i for the next level (identical
  /// on every rank). Returns the choice to use next level.
  int decide(std::span<const double> costs) {
    if (costs.empty()) return cur_;
    if (cur_ >= static_cast<int>(costs.size())) cur_ = 0;
    if (dwell_left_ > 0) {
      --dwell_left_;
      return cur_;
    }
    int best = cur_;
    for (int i = 0; i < static_cast<int>(costs.size()); ++i)
      if (costs[static_cast<size_t>(i)] < costs[static_cast<size_t>(best)])
        best = i;
    if (best != cur_ &&
        costs[static_cast<size_t>(best)] <
            costs[static_cast<size_t>(cur_)] * (1.0 - pol_.hysteresis)) {
      cur_ = best;
      dwell_left_ = pol_.dwell;
      ++switches_;
    }
    return cur_;
  }

  int current() const { return cur_; }
  int switches() const { return switches_; }

 private:
  int cur_ = 0;
  int dwell_left_ = 0;
  int switches_ = 0;
  KnobPolicy pol_;
};

/// Trailing-window ratio estimator: rate() = sum(num) / sum(den) over the
/// last `window` observations. Used for measured unit rates (ns per scanned
/// edge, ns per unvisited vertex, bytes per chunk).
class TrailingMean {
 public:
  explicit TrailingMean(int window = 3)
      : window_(window < 1 ? 1 : window) {}

  void push(double num, double den) {
    if (static_cast<int>(num_.size()) == window_) {
      num_sum_ -= num_.front();
      den_sum_ -= den_.front();
      num_.erase(num_.begin());
      den_.erase(den_.begin());
    }
    num_.push_back(num);
    den_.push_back(den);
    num_sum_ += num;
    den_sum_ += den;
  }

  bool ready() const { return den_sum_ > 0.0; }
  double rate() const { return den_sum_ > 0.0 ? num_sum_ / den_sum_ : 0.0; }
  int samples() const { return static_cast<int>(num_.size()); }

 private:
  int window_;
  std::vector<double> num_, den_;
  double num_sum_ = 0.0, den_sum_ = 0.0;
};

/// Adaptive traversal-direction choice. Observes each completed level's
/// allreduced kernel time and work denominator, maintains per-direction
/// unit rates (top-down: ns per scanned edge; bottom-up: ns per unvisited
/// vertex), and predicts the next level's cost under both directions. Until
/// both rates have history it falls back to the static Beamer thresholds,
/// so the first td->bu switch happens exactly where the hand-tuned alpha
/// puts it and the controller refines from there.
class DirectionController {
 public:
  DirectionController(int window, KnobPolicy pol)
      : td_(window), bu_(window), arb_(0, pol) {}

  /// One completed level: `dir` it ran in, `level_ns` the allreduce-summed
  /// kernel time, `edges_scanned` the allreduce-summed scan count, and
  /// `unvisited_before` the global unvisited-vertex count at level start.
  void observe(int dir, double level_ns, std::uint64_t edges_scanned,
               std::uint64_t unvisited_before) {
    if (dir == 0)
      td_.push(level_ns, static_cast<double>(edges_scanned));
    else
      bu_.push(level_ns, static_cast<double>(unvisited_before));
  }

  /// Direction of the next level. `mf` = frontier edges a top-down level
  /// would scan, `unvisited_after` = global unvisited vertices a bottom-up
  /// level would probe, `nf`/`rem`/`n` + alpha/beta feed the Beamer
  /// fallback used while a side lacks measurements.
  int decide(int cur_dir, bool growing, std::uint64_t nf, std::uint64_t mf,
             std::uint64_t rem, std::uint64_t unvisited_after,
             std::uint64_t n, double alpha, double beta) {
    if (!td_.ready() || !bu_.ready()) {
      // Beamer thresholds (identical to the static hybrid test).
      int next = cur_dir;
      if (cur_dir == 0 && growing &&
          static_cast<double>(mf) > static_cast<double>(rem) / alpha)
        next = 1;
      else if (cur_dir == 1 &&
               static_cast<double>(nf) < static_cast<double>(n) / beta)
        next = 0;
      if (next != cur_dir) ++fallback_switches_;
      return next;
    }
    const double costs[2] = {
        td_.rate() * static_cast<double>(mf),
        bu_.rate() * static_cast<double>(unvisited_after)};
    return arb_.decide(costs);
  }

  /// Measured-state switches plus threshold-fallback switches.
  int switches() const { return arb_.switches() + fallback_switches_; }

 private:
  TrailingMean td_;   ///< ns per scanned edge (top-down levels)
  TrailingMean bu_;   ///< ns per unvisited vertex (bottom-up levels)
  KnobArbiter arb_;
  int fallback_switches_ = 0;
};

/// Per-level knob state for the frontier exchange: pipeline depth K and
/// base allgather algorithm, decided from the trailing mean of the gate's
/// *measured* per-chunk wire bytes (an allreduced quantity, so rank-
/// uniform). The exchange evaluates its own closed-form collective models
/// over the candidates and hands the cost vectors to the arbiters here.
class ExchangeTuner {
 public:
  ExchangeTuner(bool adapt_chunks, bool adapt_allgather, int window,
                KnobPolicy pol, int base_k, int base_algo)
      : adapt_chunks_(adapt_chunks),
        adapt_allgather_(adapt_allgather),
        chunk_bytes_(window) {
    // Candidate ladders always contain the configured baseline so the
    // controller's first decision is a no-op relative to the static config.
    k_candidates_ = {1, 2, 4, 8, 16};
    bool have_k = false;
    for (size_t i = 0; i < k_candidates_.size(); ++i)
      if (k_candidates_[i] == base_k) {
        have_k = true;
        k_arb_ = KnobArbiter(static_cast<int>(i), pol);
      }
    if (!have_k) {
      k_candidates_.push_back(base_k);
      k_arb_ = KnobArbiter(static_cast<int>(k_candidates_.size()) - 1, pol);
    }
    algo_candidates_ = {0, 1, 2};  // rt::AllgatherAlgo enumerator order
    algo_arb_ = KnobArbiter(base_algo >= 0 && base_algo < 3 ? base_algo : 0,
                            pol);
  }

  bool adapt_chunks() const { return adapt_chunks_; }
  bool adapt_allgather() const { return adapt_allgather_; }

  /// Record one exchange's measured mean wire chunk (from the codec gate).
  void observe(std::uint64_t wire_chunk_bytes) {
    chunk_bytes_.push(static_cast<double>(wire_chunk_bytes), 1.0);
  }
  bool ready() const { return chunk_bytes_.ready(); }
  std::uint64_t trailing_chunk_bytes() const {
    return static_cast<std::uint64_t>(chunk_bytes_.rate());
  }

  std::span<const int> k_candidates() const { return k_candidates_; }
  std::span<const int> algo_candidates() const { return algo_candidates_; }
  KnobArbiter& k_arbiter() { return k_arb_; }
  KnobArbiter& algo_arbiter() { return algo_arb_; }
  int k_switches() const { return k_arb_.switches(); }
  int algo_switches() const { return algo_arb_.switches(); }

 private:
  bool adapt_chunks_;
  bool adapt_allgather_;
  TrailingMean chunk_bytes_;
  std::vector<int> k_candidates_;
  std::vector<int> algo_candidates_;
  KnobArbiter k_arb_;
  KnobArbiter algo_arb_;
};

}  // namespace numabfs::tune
