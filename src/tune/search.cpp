#include "tune/search.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

namespace numabfs::tune {

namespace {

std::string point_str(const std::vector<Dim>& dims,
                      const std::vector<int>& p) {
  std::ostringstream os;
  for (size_t i = 0; i < dims.size(); ++i)
    os << (i ? " " : "") << dims[i].name << "=" << p[i];
  return os.str();
}

}  // namespace

SearchResult coordinate_descent(const std::vector<Dim>& dims,
                                const Objective& objective,
                                std::vector<int> start,
                                const std::vector<std::vector<int>>& extra_seeds,
                                SearchOptions opt) {
  if (start.size() != dims.size())
    throw std::invalid_argument("coordinate_descent: start/dims size mismatch");
  for (size_t i = 0; i < dims.size(); ++i) {
    if (dims[i].size < 1)
      throw std::invalid_argument("coordinate_descent: empty dim " +
                                  dims[i].name);
    if (start[i] < 0 || start[i] >= dims[i].size)
      throw std::invalid_argument("coordinate_descent: start out of range on " +
                                  dims[i].name);
  }

  SearchResult res;
  std::map<std::vector<int>, std::optional<double>> memo;

  auto eval = [&](const std::vector<int>& p) -> std::optional<double> {
    auto it = memo.find(p);
    if (it != memo.end()) {
      ++res.cache_hits;
      return it->second;
    }
    auto score = objective(p);
    ++res.evaluations;
    if (!score) ++res.invalid;
    memo.emplace(p, score);
    return score;
  };

  // Score the start plus any seeds; descend from the best valid one.
  bool have_best = false;
  auto consider = [&](const std::vector<int>& p, const char* tag) {
    if (p.size() != dims.size()) return;
    bool in_range = true;
    for (size_t i = 0; i < dims.size(); ++i)
      if (p[i] < 0 || p[i] >= dims[i].size) in_range = false;
    if (!in_range) return;
    auto s = eval(p);
    if (!s) return;
    if (!have_best || *s > res.best_score) {
      have_best = true;
      res.best = p;
      res.best_score = *s;
      res.log.push_back(std::string(tag) + ": " + point_str(dims, p) +
                        " score=" + std::to_string(*s));
    }
  };
  consider(start, "seed");
  for (const auto& s : extra_seeds) consider(s, "seed");
  if (!have_best)
    throw std::runtime_error(
        "coordinate_descent: no valid seed point (start and all extra seeds "
        "were rejected by the objective)");

  for (int round = 0; round < opt.max_rounds; ++round) {
    ++res.rounds;
    bool improved_this_round = false;
    for (size_t d = 0; d < dims.size(); ++d) {
      if (dims[d].size == 1) continue;
      // Scan outward from the incumbent in both directions; stop a
      // direction after `prune_after` consecutive non-improving evals.
      for (int step : {+1, -1}) {
        int misses = 0;
        for (int idx = res.best[d] + step; idx >= 0 && idx < dims[d].size;
             idx += step) {
          std::vector<int> p = res.best;
          p[d] = idx;
          auto s = eval(p);
          if (s && *s > res.best_score) {
            res.best = p;
            res.best_score = *s;
            improved_this_round = true;
            misses = 0;
            res.log.push_back("round " + std::to_string(round) + " " +
                              dims[d].name + "->" + std::to_string(idx) +
                              " score=" + std::to_string(*s));
          } else if (++misses >= opt.prune_after) {
            break;
          }
        }
      }
    }
    if (!improved_this_round) break;
  }
  return res;
}

}  // namespace numabfs::tune
