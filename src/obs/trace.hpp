#pragma once
// Structured event tracing for the simulated cluster, stamped with *virtual*
// time from sim::VClock. Tracks are per-rank (plus one host/driver track);
// each simulated rank thread appends only to its own track, so no locking is
// needed. The tracer never charges time to any clock: enabling or disabling
// tracing must leave simulated results bit-identical.
//
// Export is Chrome Trace Event Format ("traceEvents" array of "X" complete
// spans and "i" instants, ts/dur in microseconds), loadable in Perfetto.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

// Span/instant categories. kCatTime spans are emitted only from the two
// modeled-time funnels (Proc::charge and Proc::barrier), are non-overlapping
// per rank, and are the basis of covered_time_ns(); everything else is
// semantic annotation layered on top.
inline constexpr const char* kCatTime = "time";
inline constexpr const char* kCatColl = "coll";
inline constexpr const char* kCatP2p = "p2p";
inline constexpr const char* kCatFault = "fault";
inline constexpr const char* kCatBfs = "bfs";
inline constexpr const char* kCatEngine = "engine";

struct TraceEvent {
  double ts_ns = 0;      // absolute virtual time (tracer base + stamp)
  double dur_ns = -1;    // >= 0: complete span; < 0: instant
  const char* cat = "";  // static-lifetime category string
  std::string name;
  std::string args;  // pre-rendered JSON object body (no braces); may be empty

  bool is_span() const { return dur_ns >= 0; }
};

// Key/value helpers for TraceEvent::args; join with ",".
std::string json_escape(std::string_view s);
std::string fmt_double(double v);
std::string kv(const char* key, double v);
std::string kv(const char* key, std::uint64_t v);
std::string kv(const char* key, std::int64_t v);
std::string kv(const char* key, int v);
std::string kv(const char* key, std::string_view v);

class Tracer {
 public:
  // One track per rank plus a final host/driver track at index nranks().
  Tracer(int nranks, int ranks_per_node);

  int nranks() const { return nranks_; }
  int ranks_per_node() const { return ppn_; }
  int host_track() const { return nranks_; }

  // All timestamps passed to span()/instant() are offset by the base. The
  // query engine resets rank clocks between waves, so it advances the base
  // to the serve-loop virtual time before each wave.
  void set_base_ns(double ns) { base_ns_ = ns; }
  double base_ns() const { return base_ns_; }

  void span(int track, const char* cat, std::string name, double t0_ns,
            double t1_ns, std::string args = {});
  void instant(int track, const char* cat, std::string name, double ts_ns,
               std::string args = {});

  const std::vector<TraceEvent>& track(int t) const { return tracks_[static_cast<std::size_t>(t)]; }
  std::size_t total_events() const;
  // Sum of kCatTime span durations on one track (those spans are
  // non-overlapping by construction).
  double covered_time_ns(int track) const;
  // Largest span-end / instant timestamp across all tracks.
  double max_ts_ns() const;

  std::string chrome_json() const;
  bool write(const std::string& path) const;
  void clear();

 private:
  int nranks_;
  int ppn_;
  double base_ns_ = 0;
  std::vector<std::vector<TraceEvent>> tracks_;
};

}  // namespace obs
