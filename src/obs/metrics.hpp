#pragma once
// Central metrics registry: named counters, gauges, and fixed-bucket
// histograms, dumped as stable-schema JSON ("numabfs.metrics.v1"). Bench
// binaries fill one Registry per run and write it with --metrics=<path>;
// scripts/bench_baseline.py pins selected series against BENCH_baseline.json.
//
// Values are *virtual*-time quantities (or pure counts), so a committed
// baseline is bit-reproducible across machines.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace obs {

struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t d = 1) { value += d; }
};

struct Gauge {
  double value = 0;
  void set(double v) { value = v; }
};

class Histogram {
 public:
  // upper_bounds must be strictly increasing; an implicit +inf bucket is
  // appended, so counts() has upper_bounds.size() + 1 entries.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // First call for a name fixes the bucket bounds; later calls may pass an
  // empty vector to fetch the existing histogram.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds = {});

  bool has(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  std::string json() const;
  bool write(const std::string& path) const;
  void clear();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace obs
