#include "obs/trace.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

std::string kv(const char* key, double v) {
  return std::string("\"") + key + "\":" + fmt_double(v);
}
std::string kv(const char* key, std::uint64_t v) {
  return std::string("\"") + key + "\":" + std::to_string(v);
}
std::string kv(const char* key, std::int64_t v) {
  return std::string("\"") + key + "\":" + std::to_string(v);
}
std::string kv(const char* key, int v) {
  return kv(key, static_cast<std::int64_t>(v));
}
std::string kv(const char* key, std::string_view v) {
  return std::string("\"") + key + "\":\"" + json_escape(v) + "\"";
}

Tracer::Tracer(int nranks, int ranks_per_node)
    : nranks_(nranks), ppn_(ranks_per_node < 1 ? 1 : ranks_per_node) {
  if (nranks < 1) throw std::invalid_argument("Tracer: nranks must be >= 1");
  tracks_.resize(static_cast<std::size_t>(nranks_) + 1);
}

void Tracer::span(int track, const char* cat, std::string name, double t0_ns,
                  double t1_ns, std::string args) {
  auto& t = tracks_[static_cast<std::size_t>(track)];
  t.push_back(TraceEvent{base_ns_ + t0_ns, std::max(0.0, t1_ns - t0_ns), cat,
                         std::move(name), std::move(args)});
}

void Tracer::instant(int track, const char* cat, std::string name,
                     double ts_ns, std::string args) {
  auto& t = tracks_[static_cast<std::size_t>(track)];
  t.push_back(
      TraceEvent{base_ns_ + ts_ns, -1, cat, std::move(name), std::move(args)});
}

std::size_t Tracer::total_events() const {
  std::size_t n = 0;
  for (const auto& t : tracks_) n += t.size();
  return n;
}

double Tracer::covered_time_ns(int track) const {
  double sum = 0;
  for (const auto& e : tracks_[static_cast<std::size_t>(track)]) {
    if (e.is_span() && e.cat == std::string_view(kCatTime)) sum += e.dur_ns;
  }
  return sum;
}

double Tracer::max_ts_ns() const {
  double mx = 0;
  for (const auto& t : tracks_) {
    for (const auto& e : t) {
      mx = std::max(mx, e.ts_ns + (e.is_span() ? e.dur_ns : 0.0));
    }
  }
  return mx;
}

namespace {

void append_event(std::string& out, const TraceEvent& e, int pid, int tid) {
  out += "{\"name\":\"";
  out += json_escape(e.name);
  out += "\",\"cat\":\"";
  out += e.cat;
  out += "\",\"ph\":\"";
  out += e.is_span() ? 'X' : 'i';
  out += "\",\"ts\":";
  out += fmt_double(e.ts_ns / 1000.0);
  if (e.is_span()) {
    out += ",\"dur\":";
    out += fmt_double(e.dur_ns / 1000.0);
  } else {
    out += ",\"s\":\"t\"";
  }
  out += ",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  if (!e.args.empty()) {
    out += ",\"args\":{";
    out += e.args;
    out += "}";
  }
  out += "}";
}

void append_meta(std::string& out, const char* what, const std::string& value,
                 int pid, int tid) {
  out += "{\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"args\":{\"name\":\"";
  out += json_escape(value);
  out += "\"}}";
}

}  // namespace

std::string Tracer::chrome_json() const {
  const int nnodes = (nranks_ + ppn_ - 1) / ppn_;
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](auto&& fn) {
    if (!first) out += ",\n";
    first = false;
    fn();
  };
  for (int node = 0; node < nnodes; ++node) {
    emit([&] { append_meta(out, "process_name", "node " + std::to_string(node), node, 0); });
  }
  emit([&] { append_meta(out, "process_name", "driver", nnodes, 0); });
  for (int r = 0; r < nranks_; ++r) {
    emit([&] { append_meta(out, "thread_name", "rank " + std::to_string(r), r / ppn_, r); });
  }
  emit([&] { append_meta(out, "thread_name", "driver", nnodes, nranks_); });
  for (int tr = 0; tr <= nranks_; ++tr) {
    const int pid = tr == nranks_ ? nnodes : tr / ppn_;
    const int tid = tr;
    for (const auto& e : tracks_[static_cast<std::size_t>(tr)]) {
      emit([&] { append_event(out, e, pid, tid); });
    }
  }
  out += "],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

bool Tracer::write(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << chrome_json();
  return static_cast<bool>(f);
}

void Tracer::clear() {
  for (auto& t : tracks_) t.clear();
  base_ns_ = 0;
}

}  // namespace obs
