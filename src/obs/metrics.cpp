#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/trace.hpp"  // json_escape / fmt_double

namespace obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly increasing");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  count_ += 1;
  sum_ += v;
}

Counter& Registry::counter(const std::string& name) { return counters_[name]; }

Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(upper_bounds))).first;
  }
  return it->second;
}

bool Registry::has(const std::string& name) const {
  return counters_.count(name) != 0 || gauges_.count(name) != 0 ||
         histograms_.count(name) != 0;
}

std::string Registry::json() const {
  std::string out = "{\"schema\":\"numabfs.metrics.v1\",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + fmt_double(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i != 0) out += ",";
      out += fmt_double(h.bounds()[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts().size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(h.counts()[i]);
    }
    out += "],\"count\":" + std::to_string(h.count());
    out += ",\"sum\":" + fmt_double(h.sum()) + "}";
  }
  out += "}}\n";
  return out;
}

bool Registry::write(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << json();
  return static_cast<bool>(f);
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace obs
