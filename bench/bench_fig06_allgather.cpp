/// Regenerates Fig. 6: execution time of the default (Open MPI-style ring)
/// allgather vs the leader-based allgather, for 64 MB and 512 MB payloads
/// over 16 eight-socket nodes (128 processes) — with the per-step
/// breakdown that motivates the paper's sharing optimization.
///
/// Paper shape: the leader-based scheme's *intra-node* steps (gather +
/// broadcast) dominate its inter-node step; overlapping cannot hide them.

#include <iostream>

#include "common.hpp"
#include "runtime/allgather.hpp"
#include "runtime/coll_model.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  namespace cm = rt::coll_model;
  harness::Options opt(argc, argv);
  const int nodes = opt.get_int("nodes", 16);
  const int ppn = opt.get_int("ppn", 8);

  bench::print_header(
      "Fig. 6", "Default vs leader-based allgather, intra/inter breakdown",
      std::to_string(nodes) + " nodes x " + std::to_string(ppn) +
          " procs, 64/512 MB total (= in_queue at scale 29/32)");

  rt::Cluster c(sim::Topology::xeon_x7550_cluster(nodes), sim::CostParams{},
                ppn);
  const int np = c.nranks();

  harness::Table t({"total size", "algorithm", "gather", "inter", "bcast",
                    "total", "normalized"});
  for (std::uint64_t total : {64ull << 20, 512ull << 20}) {
    const std::uint64_t chunk = total / static_cast<std::uint64_t>(np);
    const cm::CollTimes def = cm::flat_ring(c, chunk);
    const cm::CollTimes lead = cm::leader_allgather(c, chunk, true, true, 1);
    const std::string sz = std::to_string(total >> 20) + " MB";
    t.row({sz, "default (ring over all ranks)", "-",
           harness::Table::ms(def.inter_ns, 1),
           "(intra overlapped: " + harness::Table::ms(def.intra_overlapped_ns, 1) + ")",
           harness::Table::ms(def.total_ns, 1), "1.00"});
    t.row({sz, "leader-based", harness::Table::ms(lead.gather_ns, 1),
           harness::Table::ms(lead.inter_ns, 1),
           harness::Table::ms(lead.bcast_ns, 1),
           harness::Table::ms(lead.total_ns, 1),
           harness::Table::fmt(lead.total_ns / def.total_ns, 2)});
    // The paper's Section III.A point: even perfectly overlapping the
    // intra- and inter-node steps cannot hide the intra-node cost.
    const cm::CollTimes over = cm::leader_allgather_overlapped(c, chunk);
    const cm::CollTimes shared = cm::leader_allgather(c, chunk, false, false, 1);
    t.row({sz, "leader-based, perfect overlap", "-", "-", "-",
           harness::Table::ms(over.total_ns, 1),
           harness::Table::fmt(over.total_ns / def.total_ns, 2)});
    t.row({sz, "sharing (gather+bcast deleted)", "-",
           harness::Table::ms(shared.inter_ns, 1), "-",
           harness::Table::ms(shared.total_ns, 1),
           harness::Table::fmt(shared.total_ns / def.total_ns, 2)});
  }
  t.print(std::cout);

  // Functional cross-check: run the real data-moving allgather (scaled down
  // to keep the single-core wall clock short) and confirm both algorithms
  // charge the modeled totals.
  const std::uint64_t words = opt.get_u64("check-words", 4096);
  std::cout << "\nruntime cross-check (" << words * 8 * static_cast<unsigned>(np)
            << " bytes total, real data movement):\n";
  harness::Table t2({"algorithm", "charged time", "model"});
  for (auto algo : {rt::AllgatherAlgo::flat_ring, rt::AllgatherAlgo::leader_ring}) {
    c.run([&](rt::Proc& p) {
      std::vector<std::uint64_t> chunk(words, static_cast<std::uint64_t>(p.rank));
      std::vector<std::uint64_t> dst(words * static_cast<std::uint64_t>(np));
      rt::allgather(p, c.world(), chunk, dst, algo, sim::Phase::bu_comm);
    });
    const double charged = c.profiles()[0].get(sim::Phase::bu_comm);
    const std::uint64_t bytes = words * 8;
    const double model =
        algo == rt::AllgatherAlgo::flat_ring
            ? cm::flat_ring(c, bytes).total_ns
            : cm::leader_allgather(c, bytes, true, true, 1).total_ns;
    t2.row({rt::to_string(algo), harness::Table::ms(charged, 3),
            harness::Table::ms(model, 3)});
  }
  t2.print(std::cout);

  std::cout << "\npaper: leader-based intra-node time >> inter-node time\n";
  return 0;
}
