/// Kernel microbenchmarks (google-benchmark): the host-side primitives the
/// simulator's wall-clock depends on — bitmap scans, summary rebuilds,
/// copy_bits assembly, R-MAT generation and CSR construction. These measure
/// *host* time (not virtual time); they guard against performance
/// regressions in the simulator itself.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "graph/bitmap.hpp"
#include "graph/codec.hpp"
#include "graph/csr.hpp"
#include "graph/rmat.hpp"
#include "graph/summary.hpp"

namespace {

using namespace numabfs::graph;

std::vector<std::uint64_t> random_frontier_words(std::size_t n,
                                                 double density,
                                                 std::uint64_t seed) {
  std::vector<std::uint64_t> words(n, 0);
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution bit(density);
  for (auto& w : words)
    for (int b = 0; b < 64; ++b)
      if (bit(rng)) w |= 1ull << b;
  return words;
}

void BM_BitmapForEachSet(benchmark::State& state) {
  const std::uint64_t bits = 1ull << static_cast<unsigned>(state.range(0));
  Bitmap bm(bits);
  auto v = bm.view();
  std::mt19937_64 rng(1);
  for (std::uint64_t i = 0; i < bits / 16; ++i) v.set(rng() % bits);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    v.for_each_set([&](std::uint64_t b) { sum += b; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits));
}
BENCHMARK(BM_BitmapForEachSet)->Arg(16)->Arg(20);

void BM_BitmapCountRange(benchmark::State& state) {
  const std::uint64_t bits = 1ull << 20;
  Bitmap bm(bits);
  auto v = bm.view();
  std::mt19937_64 rng(2);
  for (std::uint64_t i = 0; i < bits / 8; ++i) v.set(rng() % bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.count_range(100, bits - 100));
  }
}
BENCHMARK(BM_BitmapCountRange);

void BM_SummaryRebuild(benchmark::State& state) {
  const std::uint64_t bits = 1ull << 20;
  const std::uint64_t g = static_cast<std::uint64_t>(state.range(0));
  Bitmap src(bits);
  auto sv = src.view();
  std::mt19937_64 rng(3);
  for (std::uint64_t i = 0; i < bits / 64; ++i) sv.set(rng() % bits);
  Summary s(bits, g);
  auto view = s.view();
  for (auto _ : state) view.rebuild_range(sv, 0, bits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits));
}
BENCHMARK(BM_SummaryRebuild)->Arg(64)->Arg(256)->Arg(4096);

void BM_CopyBitsUnaligned(benchmark::State& state) {
  const std::uint64_t bits = 1ull << 20;
  Bitmap src(bits), dst(bits);
  auto sv = src.view();
  std::mt19937_64 rng(4);
  for (std::uint64_t i = 0; i < bits / 32; ++i) sv.set(rng() % bits);
  for (auto _ : state) {
    dst.view().reset();
    copy_bits(dst.view().words(), 37, sv.words(), 13, bits - 64, true);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits / 8));
}
BENCHMARK(BM_CopyBitsUnaligned);

// Codec throughput (DESIGN.md §10): host-side words/s for the frontier
// bitmap codec at the densities the gate sees in practice — shoulder
// (0.01), ramp (0.1) and bulge (0.5, where the gate keeps the wire raw
// but an encode trial may still run). Density is range(1)/1000.
void BM_CodecEncodeDense(benchmark::State& state) {
  const std::size_t n = 1ull << static_cast<unsigned>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 1000.0;
  const auto words = random_frontier_words(n, density, 11);
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(codec::encode_dense(words, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["bytes_per_word"] =
      static_cast<double>(out.size()) / static_cast<double>(n);
}
BENCHMARK(BM_CodecEncodeDense)
    ->Args({14, 10})
    ->Args({14, 100})
    ->Args({14, 500});

void BM_CodecEncodeBitmapSparse(benchmark::State& state) {
  const std::size_t n = 1ull << static_cast<unsigned>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 1000.0;
  const auto words = random_frontier_words(n, density, 12);
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(codec::encode_bitmap_sparse(words, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["bytes_per_word"] =
      static_cast<double>(out.size()) / static_cast<double>(n);
}
BENCHMARK(BM_CodecEncodeBitmapSparse)
    ->Args({14, 10})
    ->Args({14, 100})
    ->Args({14, 500});

void BM_CodecDecodeBitmap(benchmark::State& state) {
  const std::size_t n = 1ull << static_cast<unsigned>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 1000.0;
  const auto words = random_frontier_words(n, density, 13);
  std::vector<std::uint8_t> enc;
  codec::encode_dense(words, enc);
  std::vector<std::uint64_t> dst(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::decode_bitmap(enc, dst));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CodecDecodeBitmap)
    ->Args({14, 10})
    ->Args({14, 100})
    ->Args({14, 500});

void BM_CodecListRoundTrip(benchmark::State& state) {
  const std::size_t count = 1ull << static_cast<unsigned>(state.range(0));
  std::vector<Vertex> list(count);
  std::mt19937_64 rng(14);
  for (auto& v : list) v = static_cast<Vertex>(rng() & 0x7fffffff);
  std::vector<std::uint8_t> enc;
  std::vector<Vertex> dst;
  for (auto _ : state) {
    enc.clear();
    codec::encode_list(list, enc);
    dst.clear();
    benchmark::DoNotOptimize(codec::decode_list(enc, dst));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_CodecListRoundTrip)->Arg(10)->Arg(16);

void BM_RmatGenerate(benchmark::State& state) {
  RmatParams p;
  p.scale = static_cast<int>(state.range(0));
  p.edgefactor = 8;
  for (auto _ : state) {
    auto edges = rmat_edges(p);
    benchmark::DoNotOptimize(edges.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.num_edges()));
}
BENCHMARK(BM_RmatGenerate)->Arg(12)->Arg(16);

void BM_CsrBuild(benchmark::State& state) {
  RmatParams p;
  p.scale = static_cast<int>(state.range(0));
  p.edgefactor = 8;
  const auto edges = rmat_edges(p);
  for (auto _ : state) {
    Csr g = Csr::from_edges(p.num_vertices(), edges);
    benchmark::DoNotOptimize(g.num_directed_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_CsrBuild)->Arg(12)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
