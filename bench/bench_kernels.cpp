/// Kernel microbenchmarks (google-benchmark): the host-side primitives the
/// simulator's wall-clock depends on — bitmap scans, summary rebuilds,
/// copy_bits assembly, R-MAT generation and CSR construction. These measure
/// *host* time (not virtual time); they guard against performance
/// regressions in the simulator itself.

#include <benchmark/benchmark.h>

#include <random>

#include "graph/bitmap.hpp"
#include "graph/csr.hpp"
#include "graph/rmat.hpp"
#include "graph/summary.hpp"

namespace {

using namespace numabfs::graph;

void BM_BitmapForEachSet(benchmark::State& state) {
  const std::uint64_t bits = 1ull << static_cast<unsigned>(state.range(0));
  Bitmap bm(bits);
  auto v = bm.view();
  std::mt19937_64 rng(1);
  for (std::uint64_t i = 0; i < bits / 16; ++i) v.set(rng() % bits);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    v.for_each_set([&](std::uint64_t b) { sum += b; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits));
}
BENCHMARK(BM_BitmapForEachSet)->Arg(16)->Arg(20);

void BM_BitmapCountRange(benchmark::State& state) {
  const std::uint64_t bits = 1ull << 20;
  Bitmap bm(bits);
  auto v = bm.view();
  std::mt19937_64 rng(2);
  for (std::uint64_t i = 0; i < bits / 8; ++i) v.set(rng() % bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.count_range(100, bits - 100));
  }
}
BENCHMARK(BM_BitmapCountRange);

void BM_SummaryRebuild(benchmark::State& state) {
  const std::uint64_t bits = 1ull << 20;
  const std::uint64_t g = static_cast<std::uint64_t>(state.range(0));
  Bitmap src(bits);
  auto sv = src.view();
  std::mt19937_64 rng(3);
  for (std::uint64_t i = 0; i < bits / 64; ++i) sv.set(rng() % bits);
  Summary s(bits, g);
  auto view = s.view();
  for (auto _ : state) view.rebuild_range(sv, 0, bits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits));
}
BENCHMARK(BM_SummaryRebuild)->Arg(64)->Arg(256)->Arg(4096);

void BM_CopyBitsUnaligned(benchmark::State& state) {
  const std::uint64_t bits = 1ull << 20;
  Bitmap src(bits), dst(bits);
  auto sv = src.view();
  std::mt19937_64 rng(4);
  for (std::uint64_t i = 0; i < bits / 32; ++i) sv.set(rng() % bits);
  for (auto _ : state) {
    dst.view().reset();
    copy_bits(dst.view().words(), 37, sv.words(), 13, bits - 64, true);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits / 8));
}
BENCHMARK(BM_CopyBitsUnaligned);

void BM_RmatGenerate(benchmark::State& state) {
  RmatParams p;
  p.scale = static_cast<int>(state.range(0));
  p.edgefactor = 8;
  for (auto _ : state) {
    auto edges = rmat_edges(p);
    benchmark::DoNotOptimize(edges.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.num_edges()));
}
BENCHMARK(BM_RmatGenerate)->Arg(12)->Arg(16);

void BM_CsrBuild(benchmark::State& state) {
  RmatParams p;
  p.scale = static_cast<int>(state.range(0));
  p.edgefactor = 8;
  const auto edges = rmat_edges(p);
  for (auto _ : state) {
    Csr g = Csr::from_edges(p.num_vertices(), edges);
    benchmark::DoNotOptimize(g.num_directed_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_CsrBuild)->Arg(12)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
