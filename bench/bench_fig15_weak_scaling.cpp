/// Regenerates Fig. 15: weak scalability (TEPS) from 1 to 16 nodes for the
/// optimization ladder under ppn=8.bind-to-socket. The 16-node column
/// includes the weak node, which the paper blames for the sub-linear
/// 8 -> 16 step.
///
/// Paper shape: the communication optimizations scale much better than
/// Original.ppn=8; 8 -> 16 dips for every variant (weak node).

#include <bit>
#include <iostream>

#include "common.hpp"
#include "harness/svg.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int base_scale = opt.get_int_min("base-scale", 15, 1);
  const int roots = opt.get_int("roots", 4);

  bench::print_header(
      "Fig. 15", "Weak scalability of the implementations",
      "scale " + std::to_string(base_scale) +
          "+log2(nodes), ppn=8; 16 nodes include the weak node");

  const auto ladder = bench::fig9_ladder();
  harness::Table t({"nodes", "scale", "Original", "+Share in_q", "+Share all",
                    "+Par allgather", "+Granularity"});
  std::vector<std::string> cats;
  std::vector<std::vector<double>> series(ladder.size());

  for (int nodes : {1, 2, 4, 8, 16}) {
    const int scale = base_scale + std::countr_zero(static_cast<unsigned>(nodes));
    const harness::GraphBundle bundle =
        harness::GraphBundle::make(scale, 16, opt.get_u64("seed", 20120924));
    harness::ExperimentOptions eo;
    eo.nodes = nodes;
    eo.ppn = 8;
    if (nodes == 16) {
      eo.weak_node = 15;
      eo.weak_node_factor = opt.get_double_in("weak-factor", 0.5, 0.0, 1.0, true);
    }
    harness::Experiment e(bundle, eo);

    std::vector<std::string> row = {std::to_string(nodes),
                                    std::to_string(scale)};
    cats.push_back(std::to_string(nodes));
    for (size_t li = 0; li < ladder.size(); ++li) {
      const double teps = e.run(ladder[li].cfg, roots).harmonic_teps;
      row.push_back(harness::Table::gteps(teps));
      series[li].push_back(teps / 1e9);
    }
    t.row(row);
  }
  t.print(std::cout);

  if (opt.has("svg")) {
    harness::SvgChart chart("Fig. 15 — weak scalability", "nodes",
                            "GTEPS (virtual)");
    chart.set_categories(cats);
    for (size_t li = 0; li < ladder.size(); ++li)
      chart.add_series(ladder[li].name, series[li]);
    const std::string path = opt.get_str("svg", ".") + "/fig15_weak_scaling.svg";
    chart.write_lines(path);
    std::cout << "\nwrote " << path << "\n";
  }

  std::cout << "\npaper: optimized variants scale near-linearly to 8 nodes; "
               "8->16 is degraded by the weak node\n";
  return 0;
}
