/// Future-work ablation: 1-D vs 2-D partitioning communication volume.
///
/// The paper's related-work section notes that its sharing/parallel-
/// allgather machinery is orthogonal to Buluc & Madduri's 2-D partitioning
/// and could be applied on top. This bench quantifies, on the calibrated
/// model, the communication volumes and times of:
///   - 1-D: allgather of the full frontier bitmap over all np ranks
///     (volume m*(np-1), Eq. (1));
///   - 2-D (r x c grid): an allgather along each processor column (frontier
///     slices, volume m*(r-1) per column) plus an alltoall-style reduce
///     along rows for the discovered updates (~m per row on dense levels).
/// Shape expectation: 2-D's volume advantage grows with np — but the
/// paper's sharing optimizations attack the same term and compose with it.

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "runtime/coll_model.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  namespace cm = rt::coll_model;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 30, 1);

  bench::print_header("Ablation (future work)",
                      "1-D vs 2-D partitioning: modeled comm per level",
                      "scale " + std::to_string(scale) +
                          " frontier bitmap; ppn=8, square-ish grids");

  const std::uint64_t m = (1ull << scale) / 8;  // frontier bitmap bytes

  harness::Table t(
      {"nodes", "np", "1-D volume", "2-D volume", "1-D time", "2-D time"});
  for (int nodes : {4, 16, 64}) {
    rt::Cluster c(sim::Topology::xeon_x7550_cluster(nodes), sim::CostParams{},
                  8);
    const int np = c.nranks();
    // Square-ish grid: r*cn = np.
    int r = 1;
    while ((r << 1) * (r << 1) <= np) r <<= 1;
    const int cn = np / r;

    const std::uint64_t v1 = cm::allgather_volume_bytes(m, np);
    // 2-D: column allgathers move m*(r-1)/... each of cn columns allgathers
    // its m/cn slice over r members; row exchange moves ~m/r per row pair.
    const std::uint64_t v2 =
        static_cast<std::uint64_t>(cn) *
            cm::allgather_volume_bytes(m / static_cast<std::uint64_t>(cn), r) +
        static_cast<std::uint64_t>(r) *
            cm::allgather_volume_bytes(m / static_cast<std::uint64_t>(r), cn) /
            2;

    // Times on the model: 1-D = the paper's optimized plan (share-all +
    // parallel subgroups); 2-D = ring allgather inside each column (all
    // columns concurrent, so ppn flows share each NIC), then a half-volume
    // row exchange for the discovered updates.
    const std::uint64_t chunk = m / static_cast<std::uint64_t>(np);
    const double t1 =
        cm::leader_allgather(c, chunk, false, false, 8).total_ns;
    const auto& cp = c.params();
    const double flow_bw = c.link().nic_flow_bw(8);
    const auto ring = [&](int members, std::uint64_t bytes_per_step) {
      return members > 1 ? (members - 1) *
                               (cp.nic_msg_latency_ns +
                                static_cast<double>(bytes_per_step) / flow_bw)
                         : 0.0;
    };
    const double col =
        ring(r, m / static_cast<std::uint64_t>(cn) /
                    static_cast<std::uint64_t>(r));
    const double row = 0.5 * ring(cn, m / static_cast<std::uint64_t>(r) /
                                          static_cast<std::uint64_t>(cn));
    t.row({std::to_string(nodes), std::to_string(np),
           harness::Table::fmt(static_cast<double>(v1) / (1 << 20), 0) + " MB",
           harness::Table::fmt(static_cast<double>(v2) / (1 << 20), 0) + " MB",
           harness::Table::ms(t1, 1), harness::Table::ms(col + row, 1)});
  }
  t.print(std::cout);

  std::cout << "\n2-D cuts the replicated-frontier volume from O(np) to"
               " O(sqrt(np)) copies; the paper's sharing + parallel"
               " allgather attack the constant factor and compose with it\n";
  return 0;
}
