/// The 256-node scale ceiling: measured weak scaling of the best 1-D
/// variants vs the 2-D decomposition, locating the crossover where the
/// O(n)-per-rank replicated frontier of the 1-D allgather loses to the
/// 2-D's O(n/C) col-band expand + O(n/R)-band row fold (DESIGN.md §13).
///
/// Weak scaling: every rank count gets scale = base + round(log2(np)), so
/// the per-rank share of vertices stays constant while the replication
/// term of the 1-D exchange grows linearly with np. ppn=4 against 2 NIC
/// ports per node makes the hierarchical collectives' injection
/// serialization visible (columns touch one rank per node, so the
/// node-aware column allgather sends 1 flow per node instead of ppn).
///
/// Cost model: cache-capacity scaling stays on (structure:LLC ratios of a
/// scale-32 run, like every other bench) but the per-message alpha stays
/// *physical* instead of shrinking with n. The default benches shrink alpha
/// so the latency:bandwidth proportions of a 16-node run match the paper's
/// multi-megabyte chunks; at hundreds of nodes the per-peer messages of a
/// real scale-32 run are small and latency-dominated — exactly the term
/// the hierarchical collectives attack — so scaling alpha away here would
/// erase the effect this bench exists to measure.
///
/// Variants:
///   1-D granularity  — the paper's full ladder (Fig. 9 best)
///   1-D compressed   — + gated codec, K=4 pipelining (PR-4 best)
///   2-D flat         — codec off, flat collectives
///   2-D hier(node)   — node-aware column allgather / row alltoallv
///   2-D hier+codec   — + gated codec on every leg, K=4
///
/// Metric keys (pinned by scripts/bench_baseline.py):
///   ablation2d.n<nodes>.<variant>.harmonic_teps
///   ablation2d.n<nodes>.<variant>.wire_bytes / .wire_raw_bytes (2-D only)

#include <cmath>
#include <iostream>
#include <vector>

#include "bfs2d/bfs2d.hpp"
#include "common.hpp"
#include "graph/validate.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int base_scale = opt.get_int_min("base-scale", 11, 1);
  // Default chosen so the crossover lands inside the sweep: the 1-D wins
  // at 4 nodes, the 2-D takes over at 16 and pulls away through 256.
  const int roots = opt.get_int("roots", 2);
  const int max_nodes = opt.get_int("max-nodes", 256);
  const int ppn = opt.get_int("ppn", 4);
  const int edgefactor = opt.get_int("edgefactor", 8);
  const std::uint64_t seed = opt.get_u64("seed", 20120924);

  bench::print_header(
      "2-D crossover (measured weak scaling)",
      "best 1-D variants vs 2-D flat/hier/codec up to 256 simulated nodes",
      "weak scaling: scale = " + std::to_string(base_scale) +
          " + round(log2(np)), ppn=" + std::to_string(ppn) + ", edgefactor " +
          std::to_string(edgefactor));

  obs::Registry reg;
  std::shared_ptr<obs::Tracer> tracer;  // attached to the smallest cluster

  harness::Table t({"nodes", "np", "grid", "scale", "1-D gran", "1-D codec",
                    "2-D flat", "2-D hier", "2-D hier+codec"});
  struct Row {
    int nodes = 0;
    double best_1d = 0, best_2d = 0;
  };
  std::vector<Row> rows;
  bool codec_reduced_everywhere = true;

  for (int nodes : {4, 16, 64, 144, 256}) {
    if (nodes > max_nodes) break;
    const int np = nodes * ppn;
    const int scale =
        base_scale +
        static_cast<int>(std::lround(std::log2(static_cast<double>(np))));
    const harness::GraphBundle bundle =
        harness::GraphBundle::make(scale, edgefactor, seed);
    harness::ExperimentOptions eo;
    eo.nodes = nodes;
    eo.ppn = ppn;
    // Scale-32 cache ratios, physical alpha (see the header comment).
    eo.paper_cache_scaling = false;
    eo.params.capacity_scale =
        static_cast<double>(1ull << 32) /
        static_cast<double>(bundle.params.num_vertices());
    harness::Experiment e(bundle, eo);
    if (tracer == nullptr) tracer = bench::make_tracer(opt, e.cluster());
    const std::string prefix = "ablation2d.n" + std::to_string(nodes);

    Row row;
    row.nodes = nodes;
    const auto run_1d = [&](const std::string& name, const bfs::Config& cfg) {
      const harness::EvalResult r = e.run(cfg, roots);
      bench::record_eval(reg, prefix + "." + name, r);
      row.best_1d = std::max(row.best_1d, r.harmonic_teps);
      return r.harmonic_teps;
    };
    const double t1g = run_1d("oned_gran", bfs::granularity(256));
    const double t1c = run_1d("oned_codec", bfs::compressed(256, 4));

    const bfs2d::Grid2d grid =
        bfs2d::Grid2d::make(bundle.csr.num_vertices(), np, ppn);
    const bfs2d::DistGraph2d d2 = bfs2d::DistGraph2d::build(bundle.csr, grid);
    std::uint64_t wire_off = 0, wire_codec = 0;
    const auto run_2d = [&](const std::string& name,
                            const bfs2d::Bfs2dOptions& o2) {
      std::vector<double> teps;
      std::uint64_t wire = 0, raw = 0;
      for (int i = 0; i < roots; ++i) {
        const graph::Vertex root = bundle.roots[static_cast<size_t>(i)];
        std::vector<graph::Vertex> parent;
        const bfs2d::Bfs2dResult r =
            bfs2d::run_bfs_2d(e.cluster(), d2, root, &parent, o2);
        const auto v = graph::validate_bfs_tree(bundle.csr, root, parent);
        if (!v.ok) {
          std::cerr << "2-D validation failed (" << name << ", " << nodes
                    << " nodes): " << v.error << "\n";
          std::exit(1);
        }
        teps.push_back(r.teps());
        for (const auto& lt : r.trace) {
          wire += lt.wire_bytes();
          raw += lt.wire_raw_bytes();
        }
      }
      const double hm = harness::harmonic_mean(teps);
      reg.gauge(prefix + "." + name + ".harmonic_teps").set(hm);
      reg.counter(prefix + "." + name + ".wire_bytes").add(wire);
      reg.counter(prefix + "." + name + ".wire_raw_bytes").add(raw);
      row.best_2d = std::max(row.best_2d, hm);
      if (name == "twod_flat") wire_off = wire;
      if (name == "twod_hier_codec") wire_codec = wire;
      return hm;
    };
    bfs2d::Bfs2dOptions flat;
    const double t2f = run_2d("twod_flat", flat);
    bfs2d::Bfs2dOptions hier;
    hier.hier = rt::coll_model::HierLevel::node;
    const double t2h = run_2d("twod_hier", hier);
    bfs2d::Bfs2dOptions hc = hier;
    hc.codec = bfs::CodecMode::gate;
    hc.exchange_chunks = 4;
    const double t2hc = run_2d("twod_hier_codec", hc);
    if (wire_codec >= wire_off) codec_reduced_everywhere = false;

    t.row({std::to_string(nodes), std::to_string(np),
           std::to_string(grid.rows()) + "x" + std::to_string(grid.cols()),
           std::to_string(scale), harness::Table::gteps(t1g),
           harness::Table::gteps(t1c), harness::Table::gteps(t2f),
           harness::Table::gteps(t2h), harness::Table::gteps(t2hc)});
    rows.push_back(row);
  }
  t.print(std::cout);

  int crossover = -1;
  for (const Row& r : rows)
    if (r.best_2d > r.best_1d) {
      crossover = r.nodes;
      break;
    }
  if (crossover > 0)
    std::cout << "\ncrossover: the 2-D takes over at " << crossover
              << " nodes";
  else
    std::cout << "\ncrossover: not reached in this sweep (1-D still ahead)";
  if (!rows.empty()) {
    const Row& last = rows.back();
    std::cout << "; at " << last.nodes << " nodes best 2-D / best 1-D = "
              << harness::Table::fmt(last.best_2d / last.best_1d, 2) << "x\n";
  } else {
    std::cout << "\n";
  }
  std::cout << "codec-gated 2-D wire bytes "
            << (codec_reduced_everywhere ? "below" : "NOT below")
            << " codec-off 2-D at every measured size\n";

  bench::write_metrics(opt, reg);
  bench::write_trace(opt, tracer);
  return 0;
}
