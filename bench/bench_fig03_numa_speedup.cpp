/// Regenerates Fig. 3: BFS speedup on 1 core, 8 cores (one socket, all
/// local) and 64 cores (eight sockets), one thread per core.
///
/// Paper shape: 8 cores = 6.98x over 1 core; with the NUMA effect, 64 cores
/// are only 2.77x over 8 cores (multi-threaded over interleaved memory);
/// one-process-per-socket binding recovers 6.31x (Section II.D.3).

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 16, 1);
  const int roots = opt.get_int("roots", 4);

  bench::print_header("Fig. 3", "NUMA effect on multi-core speedup",
                      "scale " + std::to_string(scale) + ", " +
                          std::to_string(roots) + " roots (paper: scale 28)");

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(scale, 16, opt.get_u64("seed", 20120924));

  const auto run_shape = [&](int ppn, bfs::BindMode bind) {
    harness::ExperimentOptions eo;
    eo.nodes = 1;
    eo.ppn = ppn;
    harness::Experiment e(bundle, eo);
    bfs::Config cfg;
    cfg.bind = bind;
    return e.run(cfg, roots).mean_time_ns;
  };

  // 1 core and 8 cores: single-socket topologies (all memory local).
  const auto run_single_socket = [&](int cores) {
    harness::ExperimentOptions eo;
    eo.nodes = 1;
    eo.ppn = 1;
    // A single-socket topology: shrink the node to one socket by running
    // with a custom topology through the Experiment's cost parameters is
    // not expressible; instead we build the cluster directly.
    sim::CostParams cp = eo.params.with_paper_cache_scaling(
        bundle.params.num_vertices());
    rt::Cluster c(sim::Topology::single_socket(cores), cp, 1);
    graph::Partition1D part(bundle.csr.num_vertices(), 1);
    const graph::DistGraph d = graph::DistGraph::build(bundle.csr, part);
    bfs::Config cfg;
    cfg.bind = bfs::BindMode::bind_to_socket;
    bfs::DistState st(d, cfg, 1, 1);
    double total = 0;
    for (int i = 0; i < roots; ++i)
      total += bfs::run_bfs(c, d, st, bundle.roots[static_cast<size_t>(i)]).time_ns;
    return total / roots;
  };

  const double t1 = run_single_socket(1);
  const double t8 = run_single_socket(8);
  const double t64_numa = run_shape(1, bfs::BindMode::interleave);
  const double t64_bound = run_shape(8, bfs::BindMode::bind_to_socket);

  harness::Table t({"cores", "time", "speedup vs 1 core", "vs 8 cores"});
  t.row({"1 (local)", harness::Table::ms(t1), "1.00x", "-"});
  t.row({"8 (one socket, local)", harness::Table::ms(t8),
         harness::Table::fmt(t1 / t8, 2) + "x", "1.00x"});
  t.row({"64 (8 sockets, interleaved)", harness::Table::ms(t64_numa),
         harness::Table::fmt(t1 / t64_numa, 2) + "x",
         harness::Table::fmt(t8 / t64_numa, 2) + "x"});
  t.row({"64 (8 sockets, bound per socket)", harness::Table::ms(t64_bound),
         harness::Table::fmt(t1 / t64_bound, 2) + "x",
         harness::Table::fmt(t8 / t64_bound, 2) + "x"});
  t.print(std::cout);

  std::cout << "\npaper: 8 cores = 6.98x of 1 core; 64 interleaved = 2.77x of"
               " 8 cores; 64 bound = 6.31x of 8 cores\n";
  return 0;
}
