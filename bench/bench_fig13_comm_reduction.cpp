/// Regenerates Fig. 13: average time of each bottom-up communication phase
/// under weak scaling, for the optimization ladder (Original.ppn=8,
/// + Share in_queue, + Share all, + Par allgather). The 16-node column
/// includes the paper's "weak node" (one node with degraded InfiniBand).
///
/// Paper shape: 4.07x total reduction at 8 nodes; Share in_queue alone cuts
/// about half of the communication cost.

#include <bit>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int base_scale = opt.get_int_min("base-scale", 15, 1);
  const int roots = opt.get_int("roots", 4);
  const double weak = opt.get_double_in("weak-factor", 0.5, 0.0, 1.0, true);

  bench::print_header(
      "Fig. 13", "Reduction of bottom-up communication-phase time",
      "scale " + std::to_string(base_scale) +
          "+log2(nodes); 16-node column includes the weak node (NIC x" +
          harness::Table::fmt(weak, 2) + ")");

  std::vector<bench::NamedConfig> ladder = bench::fig9_ladder();
  ladder.pop_back();  // granularity does not change communication

  harness::Table t({"nodes", "scale", "Original", "+Share in_q", "+Share all",
                    "+Par allgather", "reduction"});

  for (int nodes : {1, 2, 4, 8, 16}) {
    const int scale = base_scale + std::countr_zero(static_cast<unsigned>(nodes));
    const harness::GraphBundle bundle =
        harness::GraphBundle::make(scale, 16, opt.get_u64("seed", 20120924));
    harness::ExperimentOptions eo;
    eo.nodes = nodes;
    eo.ppn = 8;
    if (nodes == 16) {
      eo.weak_node = 15;
      eo.weak_node_factor = weak;
    }
    harness::Experiment e(bundle, eo);

    std::vector<std::string> row = {std::to_string(nodes),
                                    std::to_string(scale)};
    double first = 0, last = 0;
    for (const auto& nc : ladder) {
      const harness::EvalResult r = e.run(nc.cfg, roots);
      row.push_back(harness::Table::ms(r.avg_bu_comm_phase_ns, 3));
      if (first == 0) first = r.avg_bu_comm_phase_ns;
      last = r.avg_bu_comm_phase_ns;
    }
    row.push_back(last > 0 ? harness::Table::fmt(first / last, 2) + "x" : "-");
    t.row(row);
  }
  t.print(std::cout);

  std::cout << "\npaper: 4.07x reduction at 8 nodes; Share in_queue cuts ~half"
               "; 16-node column distorted by the weak node\n";
  return 0;
}
