/// Ablations of the communication design choices DESIGN.md §8 calls out,
/// on the calibrated model:
///  1. subgroup count for the parallel allgather (1/2/4/8 — the paper uses
///     ppn=8; fewer subgroups leave NIC bandwidth on the table);
///  2. ring vs recursive-doubling for the inter-node step, by payload size
///     (Thakur–Gropp: latency- vs bandwidth-bound regimes);
///  3. the full sharing ladder at several node counts.

#include <iostream>

#include "common.hpp"
#include "runtime/coll_model.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  namespace cm = rt::coll_model;
  harness::Options opt(argc, argv);
  const int nodes = opt.get_int("nodes", 16);

  bench::print_header("Ablation", "Allgather design choices (model sweep)",
                      std::to_string(nodes) + " nodes x 8 procs");

  rt::Cluster c(sim::Topology::xeon_x7550_cluster(nodes), sim::CostParams{}, 8);
  const std::uint64_t in_queue = 512ull << 20;  // scale-32 in_queue
  const std::uint64_t chunk = in_queue / static_cast<std::uint64_t>(c.nranks());

  std::cout << "1) subgroups joining the parallel allgather ("
            << (in_queue >> 20) << " MB payload):\n";
  harness::Table t1({"subgroups", "inter-node time", "speedup vs 1"});
  const double one = cm::leader_allgather(c, chunk, false, false, 1).inter_ns;
  for (int s : {1, 2, 4, 8}) {
    // s subgroups: each flow carries the node chunk split s ways.
    const std::uint64_t node_chunk = chunk * 8;
    const double inter =
        s == 1 ? one
               : cm::inter_ring_ns(c, node_chunk / static_cast<std::uint64_t>(s), s);
    t1.row({std::to_string(s), harness::Table::ms(inter, 1),
            harness::Table::fmt(one / inter, 2) + "x"});
  }
  t1.print(std::cout);

  std::cout << "\n2) inter-node algorithm by payload (per-node chunk):\n";
  harness::Table t2({"node chunk", "ring", "recursive doubling", "winner"});
  for (std::uint64_t bytes : {1ull << 10, 1ull << 14, 1ull << 18, 1ull << 22,
                              1ull << 26}) {
    const double ring = cm::inter_ring_ns(c, bytes, 1);
    const double rd = cm::inter_recursive_doubling_ns(c, bytes, 1);
    t2.row({std::to_string(bytes >> 10) + " KiB", harness::Table::ms(ring, 3),
            harness::Table::ms(rd, 3), rd < ring ? "rd" : "ring"});
  }
  t2.print(std::cout);
  std::cout << "(Thakur–Gropp: recursive doubling wins while the per-message"
               " latency dominates; the in_queue allgather is firmly in the"
               " ring regime, the summary allgather is near the crossover)\n";

  std::cout << "\n3) sharing ladder by cluster size (" << (in_queue >> 20)
            << " MB in_queue):\n";
  harness::Table t3({"nodes", "leader-based", "+share in_q", "+share all",
                     "+parallel", "reduction"});
  for (int nn : {2, 4, 8, 16}) {
    rt::Cluster cn(sim::Topology::xeon_x7550_cluster(nn), sim::CostParams{}, 8);
    const std::uint64_t ch = in_queue / static_cast<std::uint64_t>(cn.nranks());
    const double full = cm::leader_allgather(cn, ch, true, true, 1).total_ns;
    const double no_b = cm::leader_allgather(cn, ch, true, false, 1).total_ns;
    const double none = cm::leader_allgather(cn, ch, false, false, 1).total_ns;
    const double par = cm::leader_allgather(cn, ch, false, false, 8).total_ns;
    t3.row({std::to_string(nn), harness::Table::ms(full, 1),
            harness::Table::ms(no_b, 1), harness::Table::ms(none, 1),
            harness::Table::ms(par, 1),
            harness::Table::fmt(full / par, 2) + "x"});
  }
  t3.print(std::cout);
  return 0;
}
