/// \file bench_vertex_programs.cpp
/// The frontier-program workloads (DESIGN.md §16) on the simulated NUMA
/// cluster. Two parts:
///
///  1. Per-workload singleton dispatches through run_program: delta-stepping
///     SSSP, residual push/pull PageRank, min-label connected components and
///     triangle counting, each validated against its single-rank reference
///     before the numbers count. TEPS is Graph500-style: undirected edge
///     count over total virtual time for the whole run-to-convergence.
///
///  2. A mixed serving run through the query engine: program kinds as
///     first-class queries interleaved with BFS waves, reporting qps and
///     latency percentiles of the blended workload.
///
/// A fault plan can be attached with --faults=<spec> (fault_plan.hpp
/// syntax) to price the chaos overhead; answers never change, only time.

#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "engine/engine.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/reference_algos.hpp"
#include "graph/weights.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 16, 1);
  const int nodes = opt.get_int_min("nodes", 4, 1);
  const int ppn = opt.get_int_min("ppn", 8, 1);
  const int queries = opt.get_int_min("queries", 24, 1);
  const std::uint64_t seed = opt.get_u64("seed", 20120924);
  const std::string fault_spec = opt.get_str("faults", "");

  bench::print_header(
      "vertex programs",
      "Frontier programs (SSSP / PageRank / components / triangles) on the "
      "BFS engine",
      "scale " + std::to_string(scale) + ", " + std::to_string(nodes) +
          " nodes x ppn " + std::to_string(ppn) + ", " +
          std::to_string(queries) + " mixed queries");

  std::shared_ptr<faults::FaultInjector> injector;
  if (!fault_spec.empty()) {
    try {
      injector = std::make_shared<faults::FaultInjector>(
          faults::FaultPlan::parse(fault_spec), nodes * ppn, ppn);
    } catch (const std::invalid_argument& e) {
      std::cerr << "bad fault spec: " << e.what() << "\n";
      return 1;
    }
  }

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(scale, 16, seed, 4);
  harness::ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = ppn;
  harness::Experiment e(bundle, eo);
  e.cluster().set_fault_injector(injector);
  const bfs::Config cfg = bfs::share_all();
  const graph::Csr& g = bundle.csr;
  const double undirected_edges =
      static_cast<double>(g.num_directed_edges()) / 2.0;

  // --- Part 1: singleton program dispatches ------------------------------
  obs::Registry reg;
  const engine::ProgramParams pp;
  const graph::Vertex src = bundle.roots[0];
  const graph::Vertex dst = bundle.roots[1 % bundle.roots.size()];
  int valid = 0;

  harness::Table t({"workload", "levels", "td/bu", "time", "TEPS", "value",
                    "valid"});
  for (const engine::ProgramWorkload w :
       {engine::ProgramWorkload::sssp, engine::ProgramWorkload::pagerank,
        engine::ProgramWorkload::components,
        engine::ProgramWorkload::triangles}) {
    const auto prog = engine::make_program(w, e.dist(), pp);
    engine::ProgramState ps(e.dist(), cfg, nodes, ppn, prog->with_values());
    const engine::ProgramResult res = engine::run_program(
        e.cluster(), e.dist(), ps, *prog, engine::ProgramQuery{src, dst});

    // Validate the answer against the single-rank reference before the
    // numbers count (PageRank within float32 accumulation slack).
    bool ok = res.converged;
    switch (w) {
      case engine::ProgramWorkload::sssp: {
        const auto ref = graph::ref_sssp(
            g, graph::EdgeWeights{pp.weight_seed, pp.sssp_max_weight}, src);
        ok = ok && ref[dst] != graph::kInfDist &&
             res.value == static_cast<double>(ref[dst]);
        break;
      }
      case engine::ProgramWorkload::pagerank: {
        const auto ref = graph::ref_pagerank(g, pp.pr_damping, 1e-10);
        ok = ok && std::abs(res.value - ref[src]) <=
                       0.05 * ref[src] + 1e-2;
        break;
      }
      case engine::ProgramWorkload::components: {
        const auto ref = graph::ref_components(g);
        std::uint64_t ncomp = 0;
        for (std::size_t v = 0; v < ref.size(); ++v) ncomp += ref[v] == v;
        ok = ok && res.value == static_cast<double>(ncomp);
        break;
      }
      case engine::ProgramWorkload::triangles:
        ok = ok && res.value == static_cast<double>(graph::ref_triangles(g));
        break;
    }
    valid += ok;
    if (!ok) std::cerr << to_string(w) << " FAILED validation\n";

    const double teps = undirected_edges / (res.total_ns / 1e9);
    const std::string name = to_string(w);
    reg.gauge("vertexprog." + name + ".total_ns").set(res.total_ns);
    reg.gauge("vertexprog." + name + ".teps").set(teps);
    reg.counter("vertexprog." + name + ".levels")
        .add(static_cast<std::uint64_t>(res.levels));
    t.row({name, std::to_string(res.levels),
           std::to_string(res.td_levels) + "/" + std::to_string(res.bu_levels),
           harness::Table::ms(res.total_ns), harness::Table::fmt(teps),
           harness::Table::fmt(res.value), ok ? "yes" : "NO"});
  }
  reg.gauge("vertexprog.valid").set(valid);
  t.print(std::cout);
  std::cout << "\nTEPS = undirected edges / total virtual time for the whole"
               "\nrun to convergence (multi-pass workloads revisit edges, so"
               "\nthis is a serving-throughput figure, not a per-pass rate).\n\n";

  // --- Part 2: mixed serving through the query engine --------------------
  engine::WorkloadSpec ws;
  ws.num_queries = queries;
  ws.seed = seed + 1;
  ws.mean_interarrival_ns = 2e5;
  ws.st_fraction = 0.15;
  ws.khop_fraction = 0.15;
  ws.sssp_fraction = 0.15;
  ws.pagerank_fraction = 0.1;
  ws.components_fraction = 0.1;
  ws.triangles_fraction = 0.1;
  const auto qs = engine::QueryEngine::generate(e.dist(), ws);

  engine::EngineConfig ec;
  ec.max_batch = 16;
  ec.track_parents = false;
  engine::QueryEngine eng(e.cluster(), e.dist(), cfg, ec);
  const engine::EngineReport rep = eng.serve(qs);
  bench::record_engine(reg, "vertexprog.mixed", rep);
  reg.counter("vertexprog.mixed.program_runs")
      .add(static_cast<std::uint64_t>(rep.program_runs));

  harness::Table mix({"queries", "waves", "program runs", "p50 lat",
                      "p95 lat", "qps", "recoveries"});
  mix.row({std::to_string(queries), std::to_string(rep.waves),
           std::to_string(rep.program_runs),
           harness::Table::ms(rep.p50_latency_ns),
           harness::Table::ms(rep.p95_latency_ns),
           harness::Table::fmt(rep.qps), std::to_string(rep.recoveries)});
  mix.print(std::cout);
  std::cout << "\nprogram queries dispatch as singletons between waves (FIFO"
               "\npreserved); latency percentiles blend both shapes.\n";

  bench::write_metrics(opt, reg);
  return valid == 4 ? 0 : 1;
}
