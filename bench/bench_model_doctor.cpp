/// Calibration doctor: prints every anchor the virtual-time model is
/// calibrated against (paper measurement -> model prediction) in one
/// table, so a parameter change can be sanity-checked at a glance without
/// rerunning the full figure suite. Pure model — no BFS runs.

#include <iostream>

#include "common.hpp"
#include "runtime/coll_model.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  namespace cm = rt::coll_model;
  harness::Options opt(argc, argv);
  (void)opt;

  bench::print_header("Model doctor", "Calibration anchors vs model",
                      "pure model; see numasim/cost_params.hpp");

  const sim::CostParams cp;
  rt::Cluster c16(sim::Topology::xeon_x7550_cluster(16), cp, 8);
  rt::Cluster c8n(sim::Topology::xeon_x7550_cluster(8), cp, 8);
  rt::Cluster c8n1(sim::Topology::xeon_x7550_cluster(8), cp, 1);
  const sim::MemModel& mem = c16.mem();

  harness::Table t({"anchor (paper)", "target", "model", "source"});

  t.row({"8-core intra-socket speedup", "6.98x",
         harness::Table::fmt(mem.omp_speedup(8), 2) + "x", "Fig. 3"});

  // Fig. 3's 2.77x point: per-probe penalty of interleaved+congested vs
  // local implies 8 / penalty on eight sockets.
  const std::uint64_t big = 4ull << 30;
  const double pen =
      mem.probe_ns(sim::Placement::interleaved, big, 8, true) /
      mem.probe_ns(sim::Placement::socket_local, big, 1, true);
  t.row({"64-core interleaved vs 8-core", "2.77x",
         harness::Table::fmt(8.0 / pen, 2) + "x", "Fig. 3"});

  t.row({"1-flow NIC bw / dual-port peak", "~50%",
         harness::Table::pct(c16.link().nic_node_bw(1) /
                             (2.0 * cp.nic_port_bw)),
         "Fig. 4"});
  t.row({"8-flow NIC bw / dual-port peak", "~90%",
         harness::Table::pct(c16.link().nic_node_bw(8) /
                             (2.0 * cp.nic_port_bw)),
         "Fig. 4"});

  // Fig. 6: leader-based intra vs inter at 512 MB over 128 procs.
  const std::uint64_t chunk512 = (512ull << 20) / 128;
  const cm::CollTimes lead = cm::leader_allgather(c16, chunk512, true, true, 1);
  t.row({"leader-based intra/inter (512MB)", ">1 (\"much larger\")",
         harness::Table::fmt((lead.gather_ns + lead.bcast_ns) / lead.inter_ns,
                             2) + "x",
         "Fig. 6"});

  // Fig. 12: ppn=8 vs ppn=1 collective cost at 8 nodes (scale-31 chunks).
  const std::uint64_t m31 = (1ull << 31) / 8;
  const double t1 = cm::flat_ring(c8n1, m31 / 8).total_ns;
  const double t8 = cm::flat_ring(c8n, m31 / 64).total_ns;
  t.row({"ppn=8 / ppn=1 allgather, 8 nodes", "2.34x",
         harness::Table::fmt(t8 / t1, 2) + "x", "Fig. 12"});

  // Fig. 13: communication reduction of the full ladder at 8 nodes.
  const double orig = cm::flat_ring(c8n, m31 / 64).total_ns;
  const double par = cm::leader_allgather(c8n, m31 / 64, false, false, 8).total_ns;
  t.row({"comm reduction, all opts, 8 nodes", "4.07x",
         harness::Table::fmt(orig / par, 2) + "x", "Fig. 13"});

  // Paper argument (d): remote cache faster than local DRAM.
  t.row({"remote L3 < local DRAM", "yes",
         cp.remote_cache_ns < cp.local_dram_ns ? "yes" : "NO", "Sec. III.A"});

  t.print(std::cout);
  std::cout << "\n(run the figure benches for end-to-end checks; this table"
               " isolates the model-level anchors)\n";
  return 0;
}
