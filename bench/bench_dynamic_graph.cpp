/// Dynamic graph layer benchmark (DESIGN.md §14): BFS serving under live
/// edge ingest. An ingest-rate x query-rate grid drives the LSM stack —
/// per-rank delta stores, epoch pins, background compaction — and measures
/// what the mixed read/write workload costs:
///
///   - TEPS and p99 latency degradation vs the delta-store fill,
///   - compaction pauses charged to the admission path (merge overlaps),
///   - read amplification: delta probes per scanned edge on merged views.
///
/// Every query is validated *bit-identically* against a from-scratch CSR
/// rebuild at its pinned epoch: the lane's distances equal the serial
/// reference depths on the rebuilt graph, and its parent tree passes the
/// Graph500 checker there — a merged view may cost modeled time, but it
/// must never change a bit of the answer.
///
/// --metrics=<path> emits the dyn.* counters (deltas applied, tombstones,
/// compactions, bytes merged, pins) plus the per-cell series the perf gate
/// pins; --trace=<path> records ingest.append / snapshot.pin /
/// compact.merge spans; --svg=<path> renders p99 vs ingest rate. A fault
/// plan can be attached with --faults=<spec> (fault_plan.hpp syntax) to
/// soak ingest under chaos — crash recovery must still produce answers
/// bit-identical to the rebuilt CSR at the pinned epoch:
///
///   bench_dynamic_graph --faults=seed:42,crash:rank=3@level=2

#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/dynamic/compactor.hpp"
#include "graph/dynamic/ingest.hpp"
#include "graph/dynamic/snapshot.hpp"
#include "graph/reference_bfs.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "harness/svg.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 17, 1);
  const int edgefactor = opt.get_int_min("edgefactor", 16, 1);
  const int nodes = opt.get_int_min("nodes", 4, 1);
  const int ppn = opt.get_int_min("ppn", 8, 1);
  const int queries = opt.get_int_min("queries", 24, 1);
  const int batch = opt.get_int_min("batch", 16, 1);
  const int ops = opt.get_int_min("ops", 8000, 1);  // ops per sealed epoch
  const int ingest_gap_us = opt.get_int_min("ingest-gap-us", 500, 1);
  const double fill_trigger =
      opt.get_double_in("fill-trigger", 0.05, 0.0, 1.0, true);
  const std::uint64_t seed = opt.get_u64("seed", 20120924);
  const std::string svg = opt.get_str("svg", "");
  const std::string fault_spec = opt.get_str("faults", "");

  bench::print_header(
      "dynamic graph serving",
      "BFS waves over pinned epoch snapshots under live edge ingest",
      "scale " + std::to_string(scale) + ", " + std::to_string(nodes) +
          " nodes x ppn " + std::to_string(ppn) + ", " +
          std::to_string(queries) + " queries/cell, epoch = " +
          std::to_string(ops) + " ops every " + std::to_string(ingest_gap_us) +
          " us");

  graph::RmatParams rp;
  rp.scale = scale;
  rp.edgefactor = edgefactor;
  rp.seed = seed;
  // The dynamic layer requires a canonical base (rows sorted, parallel
  // edges collapsed) so merged views and rebuilds agree bit-for-bit.
  const graph::Csr base =
      graph::Csr::from_edges(rp.num_vertices(), graph::rmat_edges(rp),
                             graph::EdgePolicy::sorted_dedup);
  const graph::Partition1D part(rp.num_vertices(), nodes * ppn);

  sim::CostParams cp =
      sim::CostParams{}.with_paper_cache_scaling(rp.num_vertices());
  rt::Cluster cluster(sim::Topology::xeon_x7550_cluster(nodes), cp, ppn);
  if (!fault_spec.empty()) {
    try {
      cluster.set_fault_injector(std::make_shared<faults::FaultInjector>(
          faults::FaultPlan::parse(fault_spec), nodes * ppn, ppn));
    } catch (const std::invalid_argument& e) {
      std::cerr << "bad fault spec: " << e.what() << "\n";
      return 1;
    }
  }
  obs::Registry reg;
  auto tracer = bench::make_tracer(opt, cluster);
  const bfs::Config cfg = bfs::par_allgather();

  const std::vector<int> ingest_rates = {0, ops, 4 * ops};
  const std::vector<int> gaps_us = {opt.get_int_min("gap-fast-us", 250, 1),
                                    opt.get_int_min("gap-slow-us", 2000, 1)};

  struct Cell {
    int rate = 0;
    int gap_us = 0;
    engine::EngineReport rep;
    double fill_max = 0;
    double read_amp = 0;  ///< delta probes per scanned edge
    double teps = 0;      ///< validated traversed edges / busy time
    double pause_ns = 0;  ///< compaction pauses charged to admission
    std::uint64_t compactions = 0;
    int valid = 0;
  };
  std::vector<Cell> cells;

  harness::Table tab({"ingest ops/ep", "arrival gap", "fill max", "compacts",
                      "pause", "read amp", "p50", "p99", "TEPS", "valid"});

  for (const int rate : ingest_rates) {
    for (const int gap_us : gaps_us) {
      Cell cell;
      cell.rate = rate;
      cell.gap_us = gap_us;

      dyn::SnapshotManager mgr(cluster, base, part, tracer.get(), &reg);
      dyn::CompactorPolicy pol;
      pol.fill_trigger = fill_trigger;
      dyn::Compactor compactor(mgr, pol);
      dyn::IngestConfig ic;
      ic.base = rp;
      ic.seed = seed ^ 0xd1a5;
      dyn::IngestGenerator gen(ic);

      // The mixed read/write driver: the pin hook first advances the write
      // side of virtual time (epochs seal on their cadence, compaction
      // fires when due), then pins the freshest epoch for the wave. Merge
      // work overlaps serving; only compaction pauses and the pin itself
      // land on the admission path.
      const double gap_ns = static_cast<double>(ingest_gap_us) * 1e3;
      double next_ingest_ns = gap_ns;
      double pending_pause_ns = 0;
      std::shared_ptr<const dyn::Snapshot> held;  // pinned across the wave
      engine::EngineConfig ec;
      ec.max_batch = batch;
      ec.graph_source = [&](double now) {
        while (rate > 0 && next_ingest_ns <= now) {
          mgr.ingest(gen.next_batch(static_cast<std::uint64_t>(rate)),
                     next_ingest_ns);
          cell.fill_max = std::max(cell.fill_max, mgr.fill());
          if (const auto cs = compactor.maybe_compact(next_ingest_ns)) {
            pending_pause_ns += cs->pause_ns;
            cell.pause_ns += cs->pause_ns;
          }
          next_ingest_ns += gap_ns;
        }
        held = mgr.pin(mgr.epoch(), now);
        engine::PinnedGraph pg;
        pg.epoch = held->epoch;
        pg.graph = held->graph;
        pg.pin_ns = held->pin_ns + pending_pause_ns;
        pending_pause_ns = 0;
        return pg;
      };

      // Bit-identity gate: every lane's distances equal the serial
      // reference on the CSR rebuilt from scratch at the wave's pinned
      // epoch, and its parent tree passes Graph500 validation there.
      // Waves pin nondecreasing epochs, so one cached rebuild suffices.
      std::uint64_t traversed = 0;
      std::uint64_t probes = 0, scanned = 0;
      std::uint64_t epoch_cached = 0;
      bool have_rebuilt = false;
      graph::Csr rebuilt;
      ec.sink = [&](std::span<const engine::WaveQuery> wq,
                    const engine::WaveResult& wr, engine::WaveState& ws) {
        probes += wr.profile_avg.counters().delta_probes;
        scanned += wr.profile_avg.counters().edges_scanned;
        if (!have_rebuilt || epoch_cached != wr.epoch) {
          rebuilt = mgr.rebuild_csr(wr.epoch);
          epoch_cached = wr.epoch;
          have_rebuilt = true;
        }
        for (std::size_t l = 0; l < wq.size(); ++l) {
          const graph::Vertex root = wq[l].source;
          const int lane = static_cast<int>(l);
          const auto dist = engine::gather_lane_distances(held->dg(), ws, lane);
          const graph::BfsTree ref = graph::reference_bfs(rebuilt, root);
          bool same = true;
          for (std::uint64_t v = 0; v < rebuilt.num_vertices() && same; ++v)
            same = ref.reached(static_cast<graph::Vertex>(v))
                       ? dist[v] == static_cast<engine::Dist>(ref.depth[v])
                       : dist[v] == engine::kUnreached;
          const auto parent = engine::gather_lane_parents(held->dg(), ws, lane);
          const auto val = graph::validate_bfs_tree(rebuilt, root, parent);
          if (same && val.ok) {
            ++cell.valid;
            traversed += val.traversed_edges();
          } else {
            std::cerr << "epoch " << wr.epoch << " lane " << l
                      << " DIVERGED from rebuilt CSR: "
                      << (same ? val.error : "distance mismatch") << "\n";
          }
        }
      };

      engine::WorkloadSpec spec;
      spec.num_queries = queries;
      spec.seed = seed;
      spec.mean_interarrival_ns = static_cast<double>(gap_us) * 1e3;
      const auto qs = engine::QueryEngine::generate(mgr.base().dg, spec);
      engine::QueryEngine qe(cluster, mgr.base().dg, cfg, ec);
      cell.rep = qe.serve(qs);
      held.reset();

      cell.compactions = mgr.compactions();
      cell.read_amp = scanned > 0 ? static_cast<double>(probes) /
                                        static_cast<double>(scanned)
                                  : 0.0;
      cell.teps = cell.rep.busy_ns > 0
                      ? static_cast<double>(traversed) /
                            (cell.rep.busy_ns * 1e-9)
                      : 0.0;

      const std::string prefix =
          "dyn.i" + std::to_string(rate) + ".g" + std::to_string(gap_us) + "us";
      bench::record_engine(reg, prefix, cell.rep);
      reg.gauge(prefix + ".fill_max").set(cell.fill_max);
      reg.gauge(prefix + ".read_amp").set(cell.read_amp);
      reg.gauge(prefix + ".teps").set(cell.teps);
      reg.gauge(prefix + ".pause_ns").set(cell.pause_ns);
      reg.counter(prefix + ".compactions").add(cell.compactions);
      reg.counter(prefix + ".valid")
          .add(static_cast<std::uint64_t>(cell.valid));

      tab.row({rate == 0 ? "static" : std::to_string(rate),
               std::to_string(gap_us) + " us",
               harness::Table::pct(cell.fill_max),
               std::to_string(cell.compactions),
               harness::Table::ms(cell.pause_ns),
               harness::Table::fmt(cell.read_amp, 3),
               harness::Table::ms(cell.rep.p50_latency_ns),
               harness::Table::ms(cell.rep.p99_latency_ns),
               harness::Table::gteps(cell.teps),
               std::to_string(cell.valid) + "/" + std::to_string(queries)});
      cells.push_back(std::move(cell));
    }
  }

  tab.print(std::cout);

  std::cout << "\np99 degradation vs static serving (same arrival gap):\n";
  for (const Cell& c : cells) {
    if (c.rate == 0) continue;
    for (const Cell& b : cells) {
      if (b.rate != 0 || b.gap_us != c.gap_us) continue;
      const double dp99 = b.rep.p99_latency_ns > 0
                              ? c.rep.p99_latency_ns / b.rep.p99_latency_ns
                              : 0.0;
      const double dteps = b.teps > 0 ? c.teps / b.teps : 0.0;
      std::cout << "  ingest " << c.rate << " ops/ep @ gap " << c.gap_us
                << " us: p99 x" << harness::Table::fmt(dp99) << ", TEPS x"
                << harness::Table::fmt(dteps) << ", fill max "
                << harness::Table::pct(c.fill_max) << "\n";
    }
  }
  std::cout << "\nevery query above was checked bit-identical against a\n"
               "from-scratch CSR rebuild at its pinned epoch; read amp =\n"
               "delta probes per scanned adjacency entry on merged views.\n";

  if (!svg.empty()) {
    harness::SvgChart chart("p99 latency under live ingest", "arrival gap",
                            "p99 latency (ms)");
    std::vector<std::string> cats;
    for (const int g : gaps_us) cats.push_back(std::to_string(g) + " us");
    chart.set_categories(cats);
    for (const int rate : ingest_rates) {
      std::vector<double> ys;
      for (const Cell& c : cells)
        if (c.rate == rate) ys.push_back(c.rep.p99_latency_ns / 1e6);
      chart.add_series(rate == 0 ? "static" : std::to_string(rate) + " ops/ep",
                       std::move(ys));
    }
    chart.write_lines(svg);
    std::cout << "\nwrote " << svg << "\n";
  }

  bench::write_metrics(opt, reg);
  bench::write_trace(opt, tracer);
  return 0;
}
