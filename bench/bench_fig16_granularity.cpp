/// Regenerates Fig. 16: performance of different granularities for
/// in_queue_summary on 16 nodes (on top of "+ Par allgather").
///
/// Paper shape: granularity 256 peaks (+10.2% over 64); very large
/// granularities fall below 64 because the summary loses its zeros.
/// The zero-skip rate printed per row is *measured* from the kernels.

#include <iostream>

#include "common.hpp"
#include "harness/svg.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 20, 1);
  const int roots = opt.get_int("roots", 8);
  const int nodes = opt.get_int("nodes", 16);

  bench::print_header("Fig. 16", "Summary-bitmap granularity sweep",
                      std::to_string(nodes) + " nodes, scale " +
                          std::to_string(scale) + " (paper: scale 32)");

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(scale, 16, opt.get_u64("seed", 20120924));
  harness::ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = 8;
  harness::Experiment e(bundle, eo);

  harness::Table t({"granularity", "summary size", "TEPS", "vs g=64",
                    "measured zero-skip rate"});
  std::vector<std::string> cats;
  std::vector<double> teps_series, skip_series;
  double base = 0;
  for (std::uint64_t g : {64ull, 128ull, 256ull, 512ull, 1024ull, 2048ull,
                          4096ull}) {
    const harness::EvalResult r = e.run(bfs::granularity(g), roots);
    if (g == 64) base = r.harmonic_teps;
    const auto& cnt = r.profile.counters();
    const double skip_rate =
        cnt.summary_probes > 0
            ? static_cast<double>(cnt.summary_zero_skips) /
                  static_cast<double>(cnt.summary_probes)
            : 0.0;
    const std::uint64_t summary_bytes =
        (bundle.params.num_vertices() / g + 7) / 8;
    t.row({std::to_string(g),
           std::to_string(summary_bytes) + " B",
           harness::Table::gteps(r.harmonic_teps),
           harness::Table::fmt(r.harmonic_teps / base, 3) + "x",
           harness::Table::pct(skip_rate)});
    cats.push_back(std::to_string(g));
    teps_series.push_back(r.harmonic_teps / 1e9);
    skip_series.push_back(skip_rate * 100.0);
  }
  t.print(std::cout);

  if (opt.has("svg")) {
    harness::SvgChart chart("Fig. 16 — summary granularity", "granularity",
                            "GTEPS (virtual) / zero-skip %");
    chart.set_categories(cats);
    chart.add_series("TEPS", teps_series);
    chart.add_series("zero-skip rate (%)", skip_series);
    const std::string path = opt.get_str("svg", ".") + "/fig16_granularity.svg";
    chart.write_lines(path);
    std::cout << "\nwrote " << path << "\n";
  }

  std::cout << "\npaper: g=256 peaks at +10.2% over g=64; g>=2048 drops "
               "below g=64\n";
  return 0;
}
