/// Regenerates the Section II.A claim: on a 64-core node, the hybrid
/// algorithm is 27.3x faster than pure top-down and 4.7x faster than pure
/// bottom-up (Graph500 evaluation method). Also sweeps the switching
/// thresholds alpha/beta (the ablation DESIGN.md §8 calls out).

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 17, 1);
  const int roots = opt.get_int("roots", 8);

  bench::print_header("Section II.A", "Hybrid vs pure top-down / bottom-up",
                      "1 node (64 cores), scale " + std::to_string(scale));

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(scale, 16, opt.get_u64("seed", 20120924));
  harness::ExperimentOptions eo;
  eo.nodes = 1;
  eo.ppn = 8;
  harness::Experiment e(bundle, eo);

  bfs::Config hybrid;  // defaults
  bfs::Config td = hybrid;
  td.direction = bfs::Direction::top_down_only;
  bfs::Config bu = hybrid;
  bu.direction = bfs::Direction::bottom_up_only;

  const double t_h = e.run(hybrid, roots).harmonic_teps;
  const double t_td = e.run(td, roots).harmonic_teps;
  const double t_bu = e.run(bu, roots).harmonic_teps;

  harness::Table t({"algorithm", "TEPS", "hybrid speedup"});
  t.row({"hybrid", harness::Table::gteps(t_h), "1.00x"});
  t.row({"pure top-down", harness::Table::gteps(t_td),
         harness::Table::fmt(t_h / t_td, 1) + "x"});
  t.row({"pure bottom-up", harness::Table::gteps(t_bu),
         harness::Table::fmt(t_h / t_bu, 1) + "x"});
  t.print(std::cout);
  std::cout << "\npaper: hybrid = 27.3x top-down, 4.7x bottom-up\n";

  // Ablation: switching thresholds.
  std::cout << "\nswitch-threshold ablation (alpha: td->bu, beta: bu->td):\n";
  harness::Table t2({"alpha", "beta", "TEPS", "bu levels"});
  for (double alpha : {2.0, 14.0, 100.0}) {
    for (double beta : {4.0, 24.0, 150.0}) {
      bfs::Config c = hybrid;
      c.alpha = alpha;
      c.beta = beta;
      const harness::EvalResult r = e.run(c, std::min(roots, 4));
      t2.row({harness::Table::fmt(alpha, 0), harness::Table::fmt(beta, 0),
              harness::Table::gteps(r.harmonic_teps),
              std::to_string(r.mean_bu_levels)});
    }
  }
  t2.print(std::cout);
  return 0;
}
