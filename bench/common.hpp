#pragma once
/// \file common.hpp
/// Shared helpers for the bench binaries. Every bench regenerates one table
/// or figure of Cui et al. (CLUSTER 2012) and prints the same rows/series
/// the paper reports, in *virtual* (model) time — see DESIGN.md §5.

#include <cctype>
#include <iostream>
#include <memory>
#include <string>

#include "bfs/hybrid.hpp"
#include "engine/engine.hpp"
#include "engine/frontdoor.hpp"
#include "harness/graph500.hpp"
#include "harness/options.hpp"
#include "harness/table.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace numabfs::bench {

inline void print_header(const std::string& figure,
                         const std::string& description,
                         const std::string& setup) {
  std::cout << "==============================================================\n"
            << "numabfs reproduction of " << figure << "\n"
            << description << "\n"
            << "setup: " << setup << "\n"
            << "note : all times/TEPS are virtual (calibrated model time)\n"
            << "==============================================================\n";
}

/// The optimization ladder of the paper's Fig. 9 (ppn=8 versions).
struct NamedConfig {
  std::string name;
  bfs::Config cfg;
};

inline std::vector<NamedConfig> fig9_ladder(std::uint64_t best_g = 256) {
  return {
      {"Original.ppn=8", bfs::original()},
      {"+ Share in_queue", bfs::share_in_queue()},
      {"+ Share all", bfs::share_all()},
      {"+ Par allgather", bfs::par_allgather()},
      {"+ Granularity", bfs::granularity(best_g)},
  };
}

/// Interleaved single-process-per-node baseline ("Original.ppn=1").
inline bfs::Config ppn1_interleave() {
  bfs::Config c = bfs::original();
  c.bind = bfs::BindMode::interleave;
  return c;
}

// --- observability plumbing (--metrics=<path>, --trace=<path>) ----------
// Every value recorded here is virtual time or a pure count, so the JSON
// is bit-reproducible across machines — which is what lets
// scripts/bench_baseline.py pin series against a committed baseline.

/// Lowercase [a-z0-9_] slug of a variant name, for stable metric keys
/// ("+ Share in_queue" -> "share_in_queue").
inline std::string slug(const std::string& name) {
  std::string out;
  bool sep = false;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (sep && !out.empty()) out += '_';
      sep = false;
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      sep = true;
    }
  }
  return out;
}

/// Record the chaos-mode reaction counters under `prefix`. Zero in
/// fault-free runs, so baselines stay clean; under a fault plan they are
/// the primary evidence of *how* the run survived.
inline void record_robustness(obs::Registry& reg, const std::string& prefix,
                              const sim::Counters& cnt) {
  reg.counter(prefix + ".retransmits").add(cnt.retransmits);
  reg.counter(prefix + ".recv_timeouts").add(cnt.recv_timeouts);
  reg.counter(prefix + ".adoptions").add(cnt.adoptions);
}

/// Record the per-level decisions of one BFS run under `prefix` (e.g.
/// "autotune.online.decisions"): levels per direction, the codec each
/// exchange rode, the chosen pipeline depth K and allgather algorithm, and
/// the online-controller switch counts. Stable `numabfs.metrics.v1` keys:
///   <prefix>.direction.{td,bu}            counters (levels run)
///   <prefix>.codec.{raw,sparse,dense}     counters (exchanges)
///   <prefix>.chunks.k<K>                  counters (bitmap exchanges)
///   <prefix>.allgather.<algo>             counters (non-shared plans)
///   <prefix>.switches.{direction,chunks,allgather}  gauges
inline void record_decisions(obs::Registry& reg, const std::string& prefix,
                             const bfs::BfsRunResult& r) {
  reg.gauge(prefix + ".switches.direction").set(r.tune_direction_switches);
  reg.gauge(prefix + ".switches.chunks").set(r.tune_chunk_switches);
  reg.gauge(prefix + ".switches.allgather").set(r.tune_allgather_switches);
  for (const bfs::LevelTrace& t : r.trace) {
    reg.counter(prefix +
                (t.direction == 0 ? ".direction.td" : ".direction.bu"))
        .add();
    switch (t.exchange_codec) {
      case 0: reg.counter(prefix + ".codec.raw").add(); break;
      case 1: reg.counter(prefix + ".codec.sparse").add(); break;
      case 2: reg.counter(prefix + ".codec.dense").add(); break;
      default: break;  // final level: no exchange
    }
    if (t.exchange_chunks > 0)
      reg.counter(prefix + ".chunks.k" + std::to_string(t.exchange_chunks))
          .add();
    if (t.exchange_algo >= 0)
      reg.counter(prefix + ".allgather." +
                  rt::to_string(static_cast<rt::AllgatherAlgo>(t.exchange_algo)))
          .add();
  }
}

/// Record one variant evaluation under `prefix` (e.g. "fig09.share_all").
inline void record_eval(obs::Registry& reg, const std::string& prefix,
                        const harness::EvalResult& r) {
  reg.gauge(prefix + ".harmonic_teps").set(r.harmonic_teps);
  reg.gauge(prefix + ".mean_time_ns").set(r.mean_time_ns);
  reg.counter(prefix + ".visited_mean").add(r.visited_mean);
  const auto& cnt = r.profile.counters();
  reg.counter(prefix + ".bytes_inter_node").add(cnt.bytes_inter_node);
  reg.counter(prefix + ".bytes_intra_node").add(cnt.bytes_intra_node);
  reg.counter(prefix + ".bytes_raw_equiv").add(cnt.bytes_raw_equiv);
  reg.counter(prefix + ".edges_scanned").add(cnt.edges_scanned);
  record_robustness(reg, prefix, cnt);
}

/// Record one query-engine serving report under `prefix`.
inline void record_engine(obs::Registry& reg, const std::string& prefix,
                          const engine::EngineReport& rep) {
  reg.gauge(prefix + ".total_ns").set(rep.total_ns);
  reg.gauge(prefix + ".busy_ns").set(rep.busy_ns);
  reg.gauge(prefix + ".mean_latency_ns").set(rep.mean_latency_ns);
  reg.gauge(prefix + ".p50_latency_ns").set(rep.p50_latency_ns);
  reg.gauge(prefix + ".p95_latency_ns").set(rep.p95_latency_ns);
  reg.gauge(prefix + ".p99_latency_ns").set(rep.p99_latency_ns);
  reg.gauge(prefix + ".qps").set(rep.qps);
  reg.counter(prefix + ".waves").add(static_cast<std::uint64_t>(rep.waves));
  reg.counter(prefix + ".levels").add(static_cast<std::uint64_t>(rep.levels));
  reg.counter(prefix + ".backpressured")
      .add(static_cast<std::uint64_t>(rep.backpressured));
}

/// Record one front-door (replicated serving tier) report under `prefix`:
/// per-class latency/attainment plus the degradation/failover evidence
/// (shed, degraded, failovers, blip) and the robustness counters.
inline void record_frontdoor(obs::Registry& reg, const std::string& prefix,
                             const engine::FrontDoorReport& rep) {
  reg.gauge(prefix + ".total_ns").set(rep.total_ns);
  reg.gauge(prefix + ".busy_ns").set(rep.busy_ns);
  reg.gauge(prefix + ".shed_rate").set(rep.shed_rate);
  reg.gauge(prefix + ".failover_blip_ns").set(rep.failover_blip_ns);
  reg.counter(prefix + ".waves").add(static_cast<std::uint64_t>(rep.waves));
  reg.counter(prefix + ".levels").add(static_cast<std::uint64_t>(rep.levels));
  reg.counter(prefix + ".failovers")
      .add(static_cast<std::uint64_t>(rep.failovers));
  reg.counter(prefix + ".replicas_lost")
      .add(static_cast<std::uint64_t>(rep.replicas_lost));
  reg.counter(prefix + ".degraded")
      .add(static_cast<std::uint64_t>(rep.degraded));
  reg.counter(prefix + ".shed").add(static_cast<std::uint64_t>(rep.shed));
  reg.counter(prefix + ".backpressured")
      .add(static_cast<std::uint64_t>(rep.backpressured));
  reg.counter(prefix + ".recoveries")
      .add(static_cast<std::uint64_t>(rep.recoveries));
  for (int c = 0; c < static_cast<int>(engine::SloClass::kCount); ++c) {
    const auto& cs = rep.cls[c];
    const std::string p =
        prefix + "." + engine::to_string(static_cast<engine::SloClass>(c));
    reg.counter(p + ".submitted").add(static_cast<std::uint64_t>(cs.submitted));
    reg.counter(p + ".served").add(static_cast<std::uint64_t>(cs.served));
    reg.counter(p + ".degraded").add(static_cast<std::uint64_t>(cs.degraded));
    reg.counter(p + ".shed").add(static_cast<std::uint64_t>(cs.shed));
    reg.gauge(p + ".p50_ns").set(cs.p50_ns);
    reg.gauge(p + ".p99_ns").set(cs.p99_ns);
    reg.gauge(p + ".attainment").set(cs.attainment);
  }
  record_robustness(reg, prefix, rep.counters);
}

/// --metrics=<path>: dump the registry as stable-schema JSON.
inline void write_metrics(const harness::Options& opt,
                          const obs::Registry& reg) {
  if (!opt.has("metrics")) return;
  const std::string path = opt.get_str("metrics", "metrics.json");
  if (reg.write(path))
    std::cout << "\nwrote " << path << "\n";
  else
    std::cerr << "\nfailed to write " << path << "\n";
}

/// --trace=<path>: attach a tracer to the cluster (nullptr when off).
inline std::shared_ptr<obs::Tracer> make_tracer(const harness::Options& opt,
                                                rt::Cluster& c) {
  if (!opt.has("trace")) return nullptr;
  auto tr = std::make_shared<obs::Tracer>(c.nranks(), c.ppn());
  c.set_tracer(tr);
  return tr;
}

/// Write the Chrome-trace JSON if --trace was given.
inline void write_trace(const harness::Options& opt,
                        const std::shared_ptr<obs::Tracer>& tr) {
  if (tr == nullptr) return;
  const std::string path = opt.get_str("trace", "trace.json");
  if (tr->write(path))
    std::cout << "\nwrote " << path << " (" << tr->total_events()
              << " events; open in https://ui.perfetto.dev)\n";
  else
    std::cerr << "\nfailed to write " << path << "\n";
}

}  // namespace numabfs::bench
