#pragma once
/// \file common.hpp
/// Shared helpers for the bench binaries. Every bench regenerates one table
/// or figure of Cui et al. (CLUSTER 2012) and prints the same rows/series
/// the paper reports, in *virtual* (model) time — see DESIGN.md §5.

#include <iostream>
#include <string>

#include "harness/graph500.hpp"
#include "harness/options.hpp"
#include "harness/table.hpp"

namespace numabfs::bench {

inline void print_header(const std::string& figure,
                         const std::string& description,
                         const std::string& setup) {
  std::cout << "==============================================================\n"
            << "numabfs reproduction of " << figure << "\n"
            << description << "\n"
            << "setup: " << setup << "\n"
            << "note : all times/TEPS are virtual (calibrated model time)\n"
            << "==============================================================\n";
}

/// The optimization ladder of the paper's Fig. 9 (ppn=8 versions).
struct NamedConfig {
  std::string name;
  bfs::Config cfg;
};

inline std::vector<NamedConfig> fig9_ladder(std::uint64_t best_g = 256) {
  return {
      {"Original.ppn=8", bfs::original()},
      {"+ Share in_queue", bfs::share_in_queue()},
      {"+ Share all", bfs::share_all()},
      {"+ Par allgather", bfs::par_allgather()},
      {"+ Granularity", bfs::granularity(best_g)},
  };
}

/// Interleaved single-process-per-node baseline ("Original.ppn=1").
inline bfs::Config ppn1_interleave() {
  bfs::Config c = bfs::original();
  c.bind = bfs::BindMode::interleave;
  return c;
}

}  // namespace numabfs::bench
