/// Self-tuning configuration bench (DESIGN.md §15). Two pinned objectives:
///
///  1. Weak-scaling TEPS: coordinate-descent search over the full knob grid
///     (sharing ladder x granularity x codec x pipeline depth x allgather
///     algorithm x alpha/beta) against the Graph500 harmonic-TEPS
///     objective, seeded with the paper's hand-picked Fig. 9 ladder — so
///     the tuned point is >= the best hand configuration by construction.
///
///  2. Query-engine qps: the same search over (batch, granularity, codec,
///     pipeline depth) for the serving loop.
///
/// The tuned points are emitted as a versioned TunedProfile
/// (--emit-profile=PATH, schema numabfs.tuned_profile.v1) and can be
/// loaded back (--profile=PATH) to skip the search: lookup is exact shape
/// first, nearest-shape otherwise. A final row runs the tuned config with
/// the online per-level controllers on (tune.adapt_*) and records their
/// decisions under numabfs.metrics.v1 keys.
///
/// The binary exits 1 if the tuned configuration loses to the best
/// hand-picked one on either objective — that inequality is the contract
/// the perf gate pins (autotune.weak.gain / autotune.engine.gain >= 1).

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "tune/profile.hpp"
#include "tune/search.hpp"

namespace {

using namespace numabfs;

/// Weak-scaling knob grid. Index order matches the Dim list below.
struct WeakGrid {
  std::vector<bench::NamedConfig> ladder;  ///< sharing/allgather rungs
  std::vector<std::uint64_t> grans = {64, 128, 256, 512};
  std::vector<bfs::CodecMode> codecs = {bfs::CodecMode::off,
                                        bfs::CodecMode::gate};
  std::vector<int> chunks = {1, 2, 4, 8};
  std::vector<rt::AllgatherAlgo> algos = {rt::AllgatherAlgo::flat_ring,
                                          rt::AllgatherAlgo::leader_ring,
                                          rt::AllgatherAlgo::leader_rd};
  std::vector<double> alphas = {7.0, 14.0, 28.0};
  std::vector<double> betas = {12.0, 24.0, 48.0};

  WeakGrid() {
    ladder = {{"Original", bfs::original()},
              {"+ Share in_queue", bfs::share_in_queue()},
              {"+ Share all", bfs::share_all()},
              {"+ Par allgather", bfs::par_allgather()}};
  }

  std::vector<tune::Dim> dims() const {
    return {{"ladder", static_cast<int>(ladder.size())},
            {"granularity", static_cast<int>(grans.size())},
            {"codec", static_cast<int>(codecs.size())},
            {"chunks", static_cast<int>(chunks.size())},
            {"allgather", static_cast<int>(algos.size())},
            {"alpha", static_cast<int>(alphas.size())},
            {"beta", static_cast<int>(betas.size())}};
  }

  bfs::Config decode(const std::vector<int>& ix) const {
    bfs::Config c = ladder[static_cast<size_t>(ix[0])].cfg;
    c.summary_granularity = grans[static_cast<size_t>(ix[1])];
    c.codec = codecs[static_cast<size_t>(ix[2])];
    c.exchange_chunks = chunks[static_cast<size_t>(ix[3])];
    c.base_algo = algos[static_cast<size_t>(ix[4])];
    c.alpha = alphas[static_cast<size_t>(ix[5])];
    c.beta = betas[static_cast<size_t>(ix[6])];
    return c;
  }
};

/// Engine knob grid: batch size plus the BFS knobs the MS-BFS wave
/// consults, on top of the "+ Par allgather" rung.
struct EngineGrid {
  std::vector<int> batches = {4, 8, 16, 32, 64};
  std::vector<std::uint64_t> grans = {64, 256};
  std::vector<bfs::CodecMode> codecs = {bfs::CodecMode::off,
                                        bfs::CodecMode::gate};
  std::vector<int> chunks = {1, 2, 4};

  std::vector<tune::Dim> dims() const {
    return {{"batch", static_cast<int>(batches.size())},
            {"granularity", static_cast<int>(grans.size())},
            {"codec", static_cast<int>(codecs.size())},
            {"chunks", static_cast<int>(chunks.size())}};
  }

  bfs::Config decode(const std::vector<int>& ix) const {
    bfs::Config c = bfs::par_allgather();
    c.summary_granularity = grans[static_cast<size_t>(ix[1])];
    c.codec = codecs[static_cast<size_t>(ix[2])];
    c.exchange_chunks = chunks[static_cast<size_t>(ix[3])];
    return c;
  }
  int batch(const std::vector<int>& ix) const {
    return batches[static_cast<size_t>(ix[0])];
  }
};

/// Turn the tuned static config into its online-adaptive variant: enable
/// every controller the config's other knobs allow.
bfs::Config with_online(bfs::Config c) {
  c.tune.adapt_direction = c.direction == bfs::Direction::hybrid;
  c.tune.adapt_chunks = c.codec != bfs::CodecMode::off;
  c.tune.adapt_allgather = c.sharing == bfs::Sharing::none;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 13, 1);
  const int nodes = opt.get_int_min("nodes", 2, 1);
  const int ppn = opt.get_int_min("ppn", 2, 1);
  const int roots = opt.get_int_min("roots", 2, 1);
  const int escale = opt.get_int_min("engine-scale", 12, 1);
  const int queries = opt.get_int_min("queries", 8, 1);
  const std::uint64_t seed = opt.get_u64("seed", 20120924);
  const std::string emit_path = opt.get_str("emit-profile", "");
  const std::string load_path = opt.get_str("profile", "");

  tune::SearchOptions so;
  so.max_rounds = opt.get_int_min("rounds", 3, 1);
  so.prune_after = opt.get_int_min("prune-after", 2, 1);

  bench::print_header(
      "autotune", "Offline profile search vs the hand-picked ladder",
      "weak: scale " + std::to_string(scale) + ", " + std::to_string(nodes) +
          " nodes x ppn " + std::to_string(ppn) + ", " +
          std::to_string(roots) + " roots; engine: scale " +
          std::to_string(escale) + ", " + std::to_string(queries) +
          " queries");

  obs::Registry reg;
  tune::TunedProfile loaded;
  if (!load_path.empty()) {
    loaded = tune::TunedProfile::load(load_path);
    std::cout << "loaded profile " << load_path << " ("
              << loaded.entries.size() << " entries)\n\n";
  }

  // --- Part 1: weak-scaling TEPS objective ------------------------------
  const harness::GraphBundle bundle = harness::GraphBundle::make(
      scale, 16, seed, std::max(roots, 8));
  harness::ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = ppn;
  harness::Experiment e(bundle, eo);
  const WeakGrid wg;

  const auto weak_score = [&](const bfs::Config& c) {
    return e.run(c, roots).harmonic_teps;
  };

  // Hand-picked candidates: the paper's Fig. 9 ladder plus the codec rung.
  std::vector<bench::NamedConfig> hand = bench::fig9_ladder();
  hand.push_back({"+ Codec", bfs::compressed()});
  // The same points in grid-index space, fed to the search as seeds — which
  // guarantees tuned >= best-hand by construction.
  const std::vector<std::vector<int>> hand_ix = {
      {0, 0, 0, 0, 0, 1, 1},  // Original
      {1, 0, 0, 0, 0, 1, 1},  // + Share in_queue
      {2, 0, 0, 0, 0, 1, 1},  // + Share all
      {3, 0, 0, 0, 0, 1, 1},  // + Par allgather
      {3, 2, 0, 0, 0, 1, 1},  // + Granularity (256)
      {3, 2, 1, 2, 0, 1, 1},  // + Codec (gate, K=4)
  };

  harness::Table t1({"weak-scaling variant", "config", "TEPS"});
  double hand_best = 0.0;
  std::string hand_best_name;
  for (const auto& nc : hand) {
    const harness::EvalResult hr = e.run(nc.cfg, roots);
    if (hr.harmonic_teps > hand_best) {
      hand_best = hr.harmonic_teps;
      hand_best_name = nc.name;
    }
    t1.row({nc.name, nc.cfg.name(), harness::Table::gteps(hr.harmonic_teps)});
    bench::record_eval(reg, "autotune.weak.hand." + bench::slug(nc.name), hr);
  }

  bfs::Config tuned_cfg;
  double tuned_teps = 0.0;
  const tune::ShapeKey weak_shape{scale, 16, nodes, ppn};
  if (const tune::ProfileEntry* pe = loaded.nearest(weak_shape);
      pe != nullptr && pe->objective == "harmonic_teps") {
    tuned_cfg = tune::to_bfs_config(*pe);
    tuned_teps = weak_score(tuned_cfg);
    std::cout << "profile entry (scale " << pe->shape.scale << ", "
              << pe->shape.nodes << "x" << pe->shape.ppn
              << ") applied; search skipped\n";
  } else {
    const tune::Objective obj =
        [&](const std::vector<int>& ix) -> std::optional<double> {
      const bfs::Config c = wg.decode(ix);
      if (!c.validate().empty()) return std::nullopt;
      return weak_score(c);
    };
    const tune::SearchResult sr = tune::coordinate_descent(
        wg.dims(), obj, hand_ix[4], hand_ix, so);
    tuned_cfg = wg.decode(sr.best);
    tuned_teps = sr.best_score;
    std::cout << "search: " << sr.evaluations << " evaluations ("
              << sr.cache_hits << " memo hits, " << sr.invalid
              << " invalid points), " << sr.rounds << " rounds\n";
    reg.counter("autotune.weak.search.evaluations").add(
        static_cast<std::uint64_t>(sr.evaluations));
    reg.counter("autotune.weak.search.invalid").add(
        static_cast<std::uint64_t>(sr.invalid));
  }
  t1.row({"tuned (offline search)", tuned_cfg.name(),
          harness::Table::gteps(tuned_teps)});

  // Online controllers on top of the tuned static point.
  const bfs::Config online_cfg = with_online(tuned_cfg);
  const harness::EvalResult online = e.run(online_cfg, roots);
  t1.row({"tuned + online control", online_cfg.name(),
          harness::Table::gteps(online.harmonic_teps)});
  t1.print(std::cout);
  for (const bfs::BfsRunResult& r : online.per_root)
    bench::record_decisions(reg, "autotune.online.decisions", r);
  reg.gauge("autotune.weak.online.harmonic_teps").set(online.harmonic_teps);

  const double weak_gain = hand_best > 0 ? tuned_teps / hand_best : 0.0;
  reg.gauge("autotune.weak.hand_best.harmonic_teps").set(hand_best);
  reg.gauge("autotune.weak.tuned.harmonic_teps").set(tuned_teps);
  reg.gauge("autotune.weak.gain").set(weak_gain);
  std::cout << "\nhand best: " << hand_best_name << "; tuned/hand = "
            << harness::Table::fmt(weak_gain) << "x\n\n";

  // --- Part 2: query-engine qps objective -------------------------------
  const harness::GraphBundle eb = harness::GraphBundle::make(escale, 16, seed);
  harness::ExperimentOptions eeo;
  eeo.nodes = nodes;
  eeo.ppn = ppn;
  harness::Experiment ee(eb, eeo);
  const EngineGrid eg;

  engine::WorkloadSpec ws;
  ws.num_queries = queries;
  ws.seed = seed + 1;
  ws.mean_interarrival_ns = 5e5;
  ws.st_fraction = 0.25;
  ws.khop_fraction = 0.25;
  const auto qs = engine::QueryEngine::generate(ee.dist(), ws);

  const auto engine_score = [&](const bfs::Config& c, int batch) {
    engine::EngineConfig ec;
    ec.max_batch = std::min(batch, engine::kMaxLanes);
    ec.queue_depth = 2 * queries;
    ec.track_parents = false;
    engine::QueryEngine qe(ee.cluster(), ee.dist(), c, ec);
    return qe.serve(qs).qps;
  };

  // Hand-picked serving point: the paper's best BFS rung at batch 16.
  const std::vector<int> hand_engine_ix = {2, 0, 0, 0};
  const double hand_qps =
      engine_score(eg.decode(hand_engine_ix), eg.batch(hand_engine_ix));

  bfs::Config etuned_cfg;
  int etuned_batch = 0;
  double tuned_qps = 0.0;
  const tune::ShapeKey engine_shape{escale, 16, nodes, ppn};
  const tune::ProfileEntry* epe = loaded.nearest(engine_shape);
  if (epe != nullptr && epe->objective == "qps" && epe->batch > 0) {
    etuned_cfg = tune::to_bfs_config(*epe);
    engine::EngineConfig ec;
    tune::apply(*epe, ec);
    etuned_batch = ec.max_batch;
    tuned_qps = engine_score(etuned_cfg, etuned_batch);
    std::cout << "engine profile entry applied; search skipped\n";
  } else {
    const tune::Objective eobj =
        [&](const std::vector<int>& ix) -> std::optional<double> {
      const bfs::Config c = eg.decode(ix);
      if (!c.validate().empty()) return std::nullopt;
      return engine_score(c, eg.batch(ix));
    };
    const tune::SearchResult esr = tune::coordinate_descent(
        eg.dims(), eobj, hand_engine_ix, {hand_engine_ix}, so);
    etuned_cfg = eg.decode(esr.best);
    etuned_batch = eg.batch(esr.best);
    tuned_qps = esr.best_score;
    std::cout << "engine search: " << esr.evaluations << " evaluations ("
              << esr.cache_hits << " memo hits, " << esr.invalid
              << " invalid points), " << esr.rounds << " rounds\n";
  }

  const double engine_gain = hand_qps > 0 ? tuned_qps / hand_qps : 0.0;
  harness::Table t2({"serving variant", "config", "batch", "qps"});
  t2.row({"hand (par_allgather)", eg.decode(hand_engine_ix).name(),
          std::to_string(eg.batch(hand_engine_ix)),
          harness::Table::fmt(hand_qps)});
  t2.row({"tuned (offline search)", etuned_cfg.name(),
          std::to_string(etuned_batch), harness::Table::fmt(tuned_qps)});
  t2.print(std::cout);
  reg.gauge("autotune.engine.hand.qps").set(hand_qps);
  reg.gauge("autotune.engine.tuned.qps").set(tuned_qps);
  reg.gauge("autotune.engine.gain").set(engine_gain);
  std::cout << "\ntuned/hand qps = " << harness::Table::fmt(engine_gain)
            << "x\n";

  // --- Profile emission -------------------------------------------------
  if (!emit_path.empty()) {
    tune::TunedProfile prof;
    tune::ProfileEntry w;
    w.shape = weak_shape;
    w.objective = "harmonic_teps";
    w.score = tuned_teps;
    w.config = tuned_cfg;
    prof.entries.push_back(w);
    tune::ProfileEntry q;
    q.shape = engine_shape;
    q.objective = "qps";
    q.score = tuned_qps;
    q.config = etuned_cfg;
    q.batch = etuned_batch;
    prof.entries.push_back(q);
    prof.write(emit_path);
    std::cout << "\nwrote " << emit_path << " (" << prof.entries.size()
              << " entries, schema " << tune::kProfileSchema << ")\n";
  }
  bench::write_metrics(opt, reg);

  // The contract the perf gate pins: tuned never loses to hand-picked.
  const double eps = 1.0 - 1e-9;
  if (tuned_teps < hand_best * eps || tuned_qps < hand_qps * eps) {
    std::cout << "\nFAIL: tuned configuration lost to the hand-picked one\n";
    return 1;
  }
  std::cout << "\nok: tuned >= best hand-picked on both objectives\n";
  return 0;
}
