/// Query-engine serving benchmark (the new subsystem on top of the paper's
/// optimized BFS). Two parts:
///
///  1. Amortization: a batch of concurrent full-BFS queries served as ONE
///     multi-source wave (64 lanes through one sequence of level kernels
///     and one allgather per level) vs the same queries run back-to-back
///     through the hybrid single-source BFS. Every lane's parent tree is
///     validated against the Graph500 checker before the numbers count.
///
///  2. A batch-size x arrival-rate sweep of the serving loop: virtual-time
///     latency percentiles (p50/p95/p99), throughput, and backpressure for
///     a seeded open-loop workload. --svg=<path> renders the p95 curves.
///
/// A fault plan can be attached with --faults=<spec> (fault_plan.hpp
/// syntax) to measure serving under chaos, e.g.:
///
///   bench_query_engine --faults=seed:42,crash:rank=3@level=2

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "engine/engine.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "graph/validate.hpp"
#include "harness/svg.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 17, 1);
  const int nodes = opt.get_int_min("nodes", 4, 1);
  const int ppn = opt.get_int_min("ppn", 8, 1);
  const int batch = opt.get_int_min("batch", 16, 1);
  const int queries = opt.get_int_min("queries", 32, 1);
  const std::uint64_t seed = opt.get_u64("seed", 20120924);
  const std::string svg = opt.get_str("svg", "");
  const std::string fault_spec = opt.get_str("faults", "");

  bench::print_header(
      "query engine", "Batched multi-source BFS serving vs one-at-a-time",
      "scale " + std::to_string(scale) + ", " + std::to_string(nodes) +
          " nodes x ppn " + std::to_string(ppn) + ", batch " +
          std::to_string(batch) + ", " + std::to_string(queries) +
          " queries");

  std::shared_ptr<faults::FaultInjector> injector;
  if (!fault_spec.empty()) {
    try {
      injector = std::make_shared<faults::FaultInjector>(
          faults::FaultPlan::parse(fault_spec), nodes * ppn, ppn);
    } catch (const std::invalid_argument& e) {
      std::cerr << "bad fault spec: " << e.what() << "\n";
      return 1;
    }
  }

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(scale, 16, seed, 64);
  harness::ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = ppn;
  harness::Experiment e(bundle, eo);
  const bfs::Config cfg = bfs::par_allgather();

  // --- Part 1: one wave vs back-to-back hybrid --------------------------
  engine::WorkloadSpec burst;
  burst.num_queries = std::min(batch, engine::kMaxLanes);
  burst.seed = seed;
  burst.mean_interarrival_ns = 0;  // all concurrent
  const auto burst_qs = engine::QueryEngine::generate(e.dist(), burst);

  int valid = 0;
  sim::PhaseProfile wave_prof;
  engine::EngineConfig ec;
  ec.max_batch = engine::kMaxLanes;
  ec.sink = [&](std::span<const engine::WaveQuery> wq,
                const engine::WaveResult& wr, engine::WaveState& state) {
    wave_prof += wr.profile_avg;
    for (std::size_t l = 0; l < wq.size(); ++l) {
      const auto parent =
          engine::gather_lane_parents(e.dist(), state, static_cast<int>(l));
      const auto res =
          graph::validate_bfs_tree(bundle.csr, wq[l].source, parent);
      if (res.ok) {
        ++valid;
      } else {
        std::cerr << "lane " << l << " INVALID: " << res.error << "\n";
      }
    }
  };
  e.cluster().set_fault_injector(injector);
  obs::Registry reg;
  // Trace only the Part-1 burst: one batch through the engine gives a clean
  // admission -> batch.form -> wave timeline; the Part-2 sweep reuses the
  // cluster and would overlay dozens of waves on the same tracks.
  auto tracer = bench::make_tracer(opt, e.cluster());
  engine::QueryEngine eng(e.cluster(), e.dist(), cfg, ec);
  const engine::EngineReport one_wave = eng.serve(burst_qs);
  bench::write_trace(opt, tracer);
  if (tracer != nullptr) e.cluster().set_tracer(nullptr);
  bench::record_engine(reg, "qe.one_wave", one_wave);

  double hybrid_sum_ns = 0;
  sim::PhaseProfile hybrid_prof;
  for (const engine::Query& q : burst_qs) {
    const auto [r, parent] = e.run_validated(cfg, q.source);
    hybrid_sum_ns += r.time_ns;
    hybrid_prof += r.profile_avg;
  }
  reg.gauge("qe.hybrid.total_ns").set(hybrid_sum_ns);
  reg.gauge("qe.amortization.speedup").set(hybrid_sum_ns / one_wave.total_ns);

  harness::Table amort({"serving mode", "total time", "per query",
                        "speedup", "lanes valid"});
  amort.row({"back-to-back hybrid", harness::Table::ms(hybrid_sum_ns),
             harness::Table::ms(hybrid_sum_ns / burst.num_queries), "1.00x",
             "-"});
  amort.row({"engine (1 wave)", harness::Table::ms(one_wave.total_ns),
             harness::Table::ms(one_wave.total_ns / burst.num_queries),
             harness::Table::fmt(hybrid_sum_ns / one_wave.total_ns) + "x",
             std::to_string(valid) + "/" +
                 std::to_string(burst.num_queries)});
  amort.print(std::cout);
  std::cout << "\nhybrid phases (sum): " << hybrid_prof.breakdown()
            << "\nengine phases      : " << wave_prof.breakdown() << "\n";
  std::cout << "hybrid events: edges=" << hybrid_prof.counters().edges_scanned
            << " inq_probes=" << hybrid_prof.counters().inqueue_probes
            << " writes=" << hybrid_prof.counters().queue_writes << "\n"
            << "engine events: edges=" << wave_prof.counters().edges_scanned
            << " inq_probes=" << wave_prof.counters().inqueue_probes
            << " writes=" << wave_prof.counters().queue_writes << "\n\n";

  // --- Part 2: batch-size x arrival-rate sweep --------------------------
  const std::vector<int> batches = {1, 4, 16, 64};
  const std::vector<double> gaps_ns = {2e5, 1e6, 5e6};  // open-loop arrivals

  harness::Table sweep({"batch", "interarrival", "waves", "p50 lat",
                        "p95 lat", "p99 lat", "qps", "backpressured",
                        "recoveries"});
  std::vector<std::vector<double>> p95(gaps_ns.size());
  for (std::size_t gi = 0; gi < gaps_ns.size(); ++gi) {
    const double gap = gaps_ns[gi];
    for (const int bsz : batches) {
      engine::WorkloadSpec ws;
      ws.num_queries = queries;
      ws.seed = seed + 1;
      ws.mean_interarrival_ns = gap;
      ws.st_fraction = 0.25;
      ws.khop_fraction = 0.25;
      const auto qs = engine::QueryEngine::generate(e.dist(), ws);

      engine::EngineConfig sec;
      sec.max_batch = bsz;
      sec.queue_depth = 2 * queries;  // backpressure is Part 2's depth row
      engine::QueryEngine se(e.cluster(), e.dist(), cfg, sec);
      const engine::EngineReport r = se.serve(qs);

      bench::record_engine(reg,
                           "qe.sweep.b" + std::to_string(bsz) + ".gap" +
                               std::to_string(static_cast<long>(gap / 1000)) +
                               "us",
                           r);
      p95[gi].push_back(r.p95_latency_ns);
      sweep.row({std::to_string(bsz), harness::Table::ms(gap),
                 std::to_string(r.waves),
                 harness::Table::ms(r.p50_latency_ns),
                 harness::Table::ms(r.p95_latency_ns),
                 harness::Table::ms(r.p99_latency_ns),
                 harness::Table::fmt(r.qps), std::to_string(r.backpressured),
                 std::to_string(r.recoveries)});
    }
  }
  sweep.print(std::cout);

  std::cout << "\nlatency = completion - arrival in virtual time (queueing"
               "\nincluded); one wave serves up to `batch` lanes through a"
               "\nsingle level-kernel + allgather sequence.\n";

  if (!svg.empty()) {
    harness::SvgChart chart("Query engine p95 latency", "batch size",
                            "p95 latency (ms)");
    std::vector<std::string> cats;
    for (int bsz : batches) cats.push_back(std::to_string(bsz));
    chart.set_categories(cats);
    for (std::size_t gi = 0; gi < gaps_ns.size(); ++gi) {
      std::vector<double> ms_vals;
      for (double v : p95[gi]) ms_vals.push_back(v / 1e6);
      chart.add_series("gap " + harness::Table::ms(gaps_ns[gi]),
                       std::move(ms_vals));
    }
    chart.write_lines(svg);
    std::cout << "wrote " << svg << "\n";
  }
  bench::write_metrics(opt, reg);
  return 0;
}
