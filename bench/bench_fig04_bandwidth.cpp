/// Regenerates Fig. 4: achieved bandwidth between two nodes (dual IB ports)
/// as a function of the number of processes per node communicating
/// simultaneously — the OSU micro-benchmark of the paper.
///
/// Paper shape: eight concurrent flows reach the highest bandwidth; a
/// single flow achieves roughly half of it.

#include <iostream>

#include "common.hpp"
#include "runtime/p2p.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);

  bench::print_header("Fig. 4",
                      "Inter-node bandwidth vs processes per node",
                      "2 nodes, dual IB ports, OSU-style streaming");

  const sim::Topology topo = sim::Topology::xeon_x7550_cluster(2);
  const sim::CostParams cp;

  // Model curve: aggregate bandwidth by message size and flow count.
  harness::Table t({"msg size", "ppn=1", "ppn=2", "ppn=4", "ppn=8"});
  const sim::LinkModel link(cp, topo);
  for (std::uint64_t sz = 4096; sz <= (16u << 20); sz *= 4) {
    std::vector<std::string> row;
    row.push_back(std::to_string(sz >> 10) + " KiB");
    for (int flows : {1, 2, 4, 8}) {
      const double per_flow_ns =
          cp.nic_msg_latency_ns +
          static_cast<double>(sz) / link.nic_flow_bw(flows);
      const double agg =
          static_cast<double>(flows) * static_cast<double>(sz) / per_flow_ns;
      row.push_back(harness::Table::fmt(agg, 2) + " GB/s");
    }
    t.row(row);
  }
  t.print(std::cout);

  // Cross-check with the runtime's actual p2p path at one size.
  std::cout << "\nruntime cross-check (1 MiB messages through PostOffice):\n";
  harness::Table t2({"ppn", "aggregate bandwidth"});
  for (int ppn : {1, 2, 4, 8}) {
    rt::Cluster c(topo, cp, 8);
    rt::PostOffice po(c.nranks());
    const std::uint64_t words = (1u << 20) / 8;
    std::vector<double> elapsed(static_cast<size_t>(c.nranks()), 0.0);
    c.run([&](rt::Proc& p) {
      // first `ppn` ranks of node 0 stream to their peers on node 1
      if (p.node == 0 && p.local < ppn) {
        std::vector<std::uint64_t> payload(words, 1);
        po.send(p, 8 + p.local, payload, sim::Phase::other, ppn);
        elapsed[static_cast<size_t>(p.rank)] = p.clock.now_ns();
      } else if (p.node == 1 && p.local < ppn) {
        (void)po.recv(p, p.local, sim::Phase::other);
      }
    });
    double max_ns = 0;
    for (double e : elapsed) max_ns = std::max(max_ns, e);
    const double agg = static_cast<double>(ppn) * (1u << 20) / max_ns;
    t2.row({std::to_string(ppn), harness::Table::fmt(agg, 2) + " GB/s"});
  }
  t2.print(std::cout);

  std::cout << "\npaper: 8 ppn highest; 1 ppn about half of peak\n";
  return 0;
}
