/// Regenerates Fig. 11: execution-time breakdown of the "Original"
/// implementation on a single node — ppn=1.interleave vs
/// ppn=8.bind-to-socket — and the per-phase computation speedup.
///
/// Paper shape: binding greatly speeds up both computation phases
/// (bottom-up computation by 1.58x), while the communication phases get
/// *more* expensive (eight processes allgather instead of one).

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 17, 1);
  const int roots = opt.get_int("roots", 8);

  bench::print_header("Fig. 11", "Phase breakdown on one node",
                      "scale " + std::to_string(scale) + ", " +
                          std::to_string(roots) + " roots (paper: scale 28)");

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(scale, 16, opt.get_u64("seed", 20120924));

  const auto eval = [&](int ppn, bfs::BindMode bind) {
    harness::ExperimentOptions eo;
    eo.nodes = 1;
    eo.ppn = ppn;
    harness::Experiment e(bundle, eo);
    bfs::Config cfg;
    cfg.bind = bind;
    return e.run(cfg, roots);
  };

  const harness::EvalResult a = eval(1, bfs::BindMode::interleave);
  const harness::EvalResult b = eval(8, bfs::BindMode::bind_to_socket);

  const sim::Phase phases[] = {sim::Phase::td_comp, sim::Phase::td_comm,
                               sim::Phase::bu_comp, sim::Phase::bu_comm,
                               sim::Phase::switch_conv, sim::Phase::stall,
                               sim::Phase::other};

  harness::Table t({"phase", "ppn=1.interleave", "ppn=8.bind", "speedup"});
  for (sim::Phase ph : phases) {
    const double ta = a.profile.get(ph);
    const double tb = b.profile.get(ph);
    if (ta <= 0 && tb <= 0) continue;
    t.row({sim::to_string(ph), harness::Table::ms(ta), harness::Table::ms(tb),
           tb > 0 ? harness::Table::fmt(ta / tb, 2) + "x" : "-"});
  }
  t.row({"TOTAL", harness::Table::ms(a.profile.total_ns()),
         harness::Table::ms(b.profile.total_ns()),
         harness::Table::fmt(a.profile.total_ns() / b.profile.total_ns(), 2) +
             "x"});
  t.print(std::cout);

  std::cout << "\npaper: bottom-up computation speedup 1.58x; both "
               "computation phases speed up, communication slows down\n";
  return 0;
}
