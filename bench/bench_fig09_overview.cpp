/// Regenerates Fig. 9: the headline overview — all optimizations on 16
/// nodes (128 processes), TEPS per variant.
///
/// Paper shape (scale 32, 16 nodes): Original.ppn=8 = 1.53x Original.ppn=1;
/// + Share in_queue +34.1%; + Share all +6.5%; + Par allgather +4.6%;
/// + Granularity +14.8%; overall 2.44x, reaching 39.2 GTEPS.

#include <iostream>

#include "common.hpp"
#include "harness/svg.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 20, 1);
  const int roots = opt.get_int("roots", 8);
  const int nodes = opt.get_int("nodes", 16);
  const std::uint64_t best_g = opt.get_u64_pow2("granularity", 256);

  bench::print_header("Fig. 9", "Overview of all optimizations",
                      std::to_string(nodes) + " nodes, scale " +
                          std::to_string(scale) + ", " + std::to_string(roots) +
                          " roots (paper: scale 32)");

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(scale, 16, opt.get_u64("seed", 20120924));

  harness::Table t({"variant", "TEPS", "vs ppn=1", "vs previous"});

  // Baseline: Original with one process per node, interleaved.
  obs::Registry reg;

  harness::ExperimentOptions eo1;
  eo1.nodes = nodes;
  eo1.ppn = 1;
  harness::Experiment e1(bundle, eo1);
  const harness::EvalResult r1 = e1.run(bench::ppn1_interleave(), roots);
  const double base = r1.harmonic_teps;
  bench::record_eval(reg, "fig09.original_ppn1", r1);
  t.row({"Original.ppn=1", harness::Table::gteps(base), "1.00x", "-"});

  harness::ExperimentOptions eo8;
  eo8.nodes = nodes;
  eo8.ppn = 8;
  harness::Experiment e8(bundle, eo8);
  double prev = base;
  for (const auto& nc : bench::fig9_ladder(best_g)) {
    const harness::EvalResult r = e8.run(nc.cfg, roots);
    const double teps = r.harmonic_teps;
    bench::record_eval(reg, "fig09." + bench::slug(nc.name), r);
    t.row({nc.name, harness::Table::gteps(teps),
           harness::Table::fmt(teps / base, 2) + "x",
           "+" + harness::Table::fmt((teps / prev - 1.0) * 100.0, 1) + "%"});
    prev = teps;
  }
  t.print(std::cout);
  bench::write_metrics(opt, reg);

  if (opt.has("trace")) {
    // One clean timeline: a single root under the best variant, on a fresh
    // cluster so earlier runs' clock resets don't overlay the spans.
    harness::ExperimentOptions eot;
    eot.nodes = nodes;
    eot.ppn = 8;
    harness::Experiment et(bundle, eot);
    auto tr = bench::make_tracer(opt, et.cluster());
    et.run(bench::fig9_ladder(best_g).back().cfg, 1);
    bench::write_trace(opt, tr);
  }

  if (opt.has("svg")) {
    harness::SvgChart chart("Fig. 9 — overview of all optimizations",
                            "variant", "GTEPS (virtual)");
    std::vector<std::string> cats = {"ppn=1"};
    std::vector<double> vals = {base / 1e9};
    harness::ExperimentOptions eo8b;
    eo8b.nodes = nodes;
    eo8b.ppn = 8;
    harness::Experiment e8b(bundle, eo8b);
    for (const auto& nc : bench::fig9_ladder(best_g)) {
      cats.push_back(nc.name);
      vals.push_back(e8b.run(nc.cfg, 1).harmonic_teps / 1e9);
    }
    chart.set_categories(cats);
    chart.add_series("TEPS", vals);
    const std::string path = opt.get_str("svg", ".") + "/fig09_overview.svg";
    chart.write_bars(path);
    std::cout << "\nwrote " << path << "\n";
  }

  std::cout << "\npaper: 1.53x / +34.1% / +6.5% / +4.6% / +14.8%; overall "
               "2.44x (39.2 GTEPS at scale 32)\n";
  return 0;
}
