/// Regenerates the *narrative* of Fig. 1 / Section II.A: the level-by-level
/// anatomy of one hybrid BFS — the frontier ramps up and down
/// exponentially, producing the three-phase top-down / bottom-up /
/// top-down procedure, with the bottom-up levels carrying almost all of
/// the work and all of the bitmap-allgather communication.

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 18, 1);
  const int nodes = opt.get_int("nodes", 8);

  bench::print_header("Fig. 1 (level anatomy)",
                      "Per-level profile of one hybrid BFS",
                      "scale " + std::to_string(scale) + ", " +
                          std::to_string(nodes) + " nodes, ppn=8");

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(scale, 16, opt.get_u64("seed", 20120924));
  harness::ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = 8;
  harness::Experiment e(bundle, eo);

  bfs::DistState st(e.dist(), bfs::original(), nodes, 8);
  const bfs::BfsRunResult r =
      bfs::run_bfs(e.cluster(), e.dist(), st, bundle.roots.front());

  const std::uint64_t n = bundle.params.num_vertices();
  harness::Table t({"level", "dir", "frontier", "density", "discovered",
                    "edges scanned", "skip rate", "comp", "comm"});
  for (const auto& lv : r.trace) {
    t.row({std::to_string(lv.level), lv.direction ? "bottom-up" : "top-down",
           std::to_string(lv.frontier_vertices),
           harness::Table::pct(lv.frontier_density(n), 2),
           std::to_string(lv.discovered), std::to_string(lv.edges_scanned),
           lv.direction ? harness::Table::pct(lv.skip_rate()) : "-",
           harness::Table::ms(lv.comp_ns, 3),
           harness::Table::ms(lv.comm_ns, 3)});
  }
  t.print(std::cout);

  std::uint64_t bu_edges = 0, all_edges = 0;
  double bu_comm = 0, all_comm = 0;
  for (const auto& lv : r.trace) {
    all_edges += lv.edges_scanned;
    all_comm += lv.comm_ns;
    if (lv.direction == 1) {
      bu_edges += lv.edges_scanned;
      bu_comm += lv.comm_ns;
    }
  }
  std::cout << "\nbottom-up levels carry "
            << harness::Table::pct(all_edges ? static_cast<double>(bu_edges) /
                                                   static_cast<double>(all_edges)
                                             : 0)
            << " of edge work and "
            << harness::Table::pct(all_comm > 0 ? bu_comm / all_comm : 0)
            << " of communication\n"
            << "paper: \"most of vertices are reached in the bottom-up "
               "procedure, which consumes most of the time\"\n";
  return 0;
}
