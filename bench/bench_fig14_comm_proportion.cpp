/// Regenerates Fig. 14: proportion of total execution time spent in
/// bottom-up communication, for the optimization ladder under weak scaling
/// (1-8 nodes; the paper omits 16 nodes here because of the weak node).
///
/// Paper shape: at 8 nodes the share falls from 54% (no optimization) to
/// 18% (all communication optimizations).

#include <bit>
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int base_scale = opt.get_int_min("base-scale", 15, 1);
  const int roots = opt.get_int("roots", 4);

  bench::print_header(
      "Fig. 14", "Bottom-up communication share of total time",
      "scale " + std::to_string(base_scale) + "+log2(nodes), ppn=8");

  std::vector<bench::NamedConfig> ladder = bench::fig9_ladder();
  ladder.pop_back();  // granularity is a computation optimization

  harness::Table t({"nodes", "scale", "Original", "+Share in_q", "+Share all",
                    "+Par allgather"});
  for (int nodes : {1, 2, 4, 8}) {
    const int scale = base_scale + std::countr_zero(static_cast<unsigned>(nodes));
    const harness::GraphBundle bundle =
        harness::GraphBundle::make(scale, 16, opt.get_u64("seed", 20120924));
    harness::ExperimentOptions eo;
    eo.nodes = nodes;
    eo.ppn = 8;
    harness::Experiment e(bundle, eo);

    std::vector<std::string> row = {std::to_string(nodes),
                                    std::to_string(scale)};
    for (const auto& nc : ladder)
      row.push_back(harness::Table::pct(e.run(nc.cfg, roots).bu_comm_fraction));
    t.row(row);
  }
  t.print(std::cout);

  std::cout << "\npaper: 54% -> 18% at 8 nodes with all communication "
               "optimizations\n";
  return 0;
}
