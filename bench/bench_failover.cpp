/// Replicated serving tier soak: R replica clusters behind the front door,
/// a seeded whole-replica outage mid-soak, and the robustness scorecard the
/// tier is judged by — per-class p99 latency and SLO attainment, the shed
/// rate, and the failover blip (abort-to-resume gap in virtual time).
///
/// Three phases:
///
///  1. Fault-free soak: the same workload over R healthy replicas — the
///     attainment and latency baseline.
///  2. Chaos soak: replica 0 dies (`outage:at=`) at --outage-frac of the
///     fault-free makespan, mid-wave; optional extra chaos (--faults=...)
///     is attached to every replica. In-flight lanes fail over to a healthy
///     replica and resume from the last exported checkpoint epoch.
///  3. Determinism self-check: phase 2 rerun from scratch must reproduce
///     every number bit for bit.
///
/// The binary exits nonzero if the chaos soak sheds a full-distance query,
/// misses the full-distance p99 attainment gate (>= 0.99), or fails the
/// determinism check — so CI can run it as a seeded chaos gate
/// (--soak-short shrinks the workload to CI size).

#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "engine/frontdoor.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "harness/svg.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const bool soak_short = opt.has("soak-short");
  const int scale = opt.get_int_min("scale", soak_short ? 12 : 15, 1);
  const int nodes = opt.get_int_min("nodes", 2, 1);
  const int ppn = opt.get_int_min("ppn", soak_short ? 2 : 4, 1);
  const int replicas = opt.get_int_min("replicas", 2, 1);
  const int queries = opt.get_int_min("queries", soak_short ? 32 : 96, 1);
  const int batch = opt.get_int_min("batch", 16, 1);
  const double gap_ns = opt.get_double("gap", soak_short ? 5e5 : 1e6);
  const double outage_frac = opt.get_double_in("outage-frac", 0.4, 0.0, 1.0);
  const std::uint64_t seed = opt.get_u64("seed", 20120924);
  const std::string extra_faults = opt.get_str("faults", "");
  const std::string svg = opt.get_str("svg", "");

  bench::print_header(
      "serving-tier failover",
      "SLO-aware admission, graceful degradation, mid-query failover",
      "scale " + std::to_string(scale) + ", " + std::to_string(replicas) +
          " replicas x (" + std::to_string(nodes) + " nodes x ppn " +
          std::to_string(ppn) + "), " + std::to_string(queries) +
          " queries, gap " + harness::Table::ms(gap_ns));

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(scale, 16, seed, 64);
  harness::ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = ppn;
  std::vector<std::unique_ptr<harness::Experiment>> reps;
  std::vector<engine::ReplicaHandle> handles;
  for (int r = 0; r < replicas; ++r) {
    reps.push_back(std::make_unique<harness::Experiment>(bundle, eo));
    handles.push_back({&reps.back()->cluster(), &reps.back()->dist()});
  }

  engine::WorkloadSpec ws;
  ws.num_queries = queries;
  ws.seed = seed;
  ws.mean_interarrival_ns = gap_ns;
  ws.st_fraction = 0.25;
  ws.khop_fraction = 0.25;
  const auto qs = engine::QueryEngine::generate(reps[0]->dist(), ws);

  engine::FrontDoorConfig fdc;
  fdc.max_batch = batch;
  const bfs::Config cfg = bfs::share_all();

  const auto attach = [&](int r, const std::string& spec) {
    rt::Cluster& c = reps[static_cast<std::size_t>(r)]->cluster();
    if (spec.empty()) {
      c.set_fault_injector(nullptr);
    } else {
      c.set_fault_injector(std::make_shared<faults::FaultInjector>(
          faults::FaultPlan::parse(spec), c.nranks(), c.ppn()));
    }
  };
  const auto serve = [&]() {
    engine::FrontDoor door(cfg, fdc, handles);
    return door.serve(qs);
  };

  // --- Phase 1: fault-free soak -----------------------------------------
  for (int r = 0; r < replicas; ++r) attach(r, "");
  const engine::FrontDoorReport clean = serve();

  // --- Phase 2: replica 0 dies mid-soak ---------------------------------
  // Snap the outage instant into the middle of a replica-0 wave: the chaos
  // run is bit-identical to the fault-free one up to the outage, so the
  // wave the fault-free run dispatched at `best_start` is guaranteed to be
  // in flight — the outage is a true mid-query kill, not an idle blip.
  double outage_ns = outage_frac * clean.total_ns;
  double best_start = -1;
  for (const auto& r : clean.results)
    if (r.replica == 0 && r.start_ns <= outage_ns && r.start_ns > best_start)
      best_start = r.start_ns;
  if (best_start >= 0) {
    double wave_end = best_start;
    for (const auto& r : clean.results)
      if (r.replica == 0 && r.start_ns == best_start)
        wave_end = std::max(wave_end, r.complete_ns);
    outage_ns = 0.5 * (best_start + wave_end);
  }
  const std::string chaos_seed = "seed:" + std::to_string(seed % 1000);
  std::string plan0 = chaos_seed + ",outage:at=" + std::to_string(outage_ns);
  std::string plan_rest = extra_faults.empty() ? "" : chaos_seed;
  if (!extra_faults.empty()) {
    plan0 += "," + extra_faults;
    plan_rest += "," + extra_faults;
  }
  attach(0, plan0);
  for (int r = 1; r < replicas; ++r) attach(r, plan_rest);

  obs::Registry reg;
  auto tracer = bench::make_tracer(opt, reps[0]->cluster());
  const engine::FrontDoorReport chaos = serve();
  bench::write_trace(opt, tracer);
  if (tracer != nullptr) reps[0]->cluster().set_tracer(nullptr);

  // --- Phase 3: bit-determinism self-check ------------------------------
  const engine::FrontDoorReport replay = serve();
  bool deterministic = chaos.total_ns == replay.total_ns &&
                       chaos.failover_blip_ns == replay.failover_blip_ns &&
                       chaos.failovers == replay.failovers &&
                       chaos.shed == replay.shed &&
                       chaos.degraded == replay.degraded;
  for (int c = 0; c < static_cast<int>(engine::SloClass::kCount); ++c)
    deterministic = deterministic &&
                    chaos.cls[c].p99_ns == replay.cls[c].p99_ns &&
                    chaos.cls[c].attainment == replay.cls[c].attainment;

  // --- Report ------------------------------------------------------------
  const auto class_table = [&](const char* title,
                               const engine::FrontDoorReport& rep) {
    std::cout << "\n" << title << "\n";
    harness::Table t({"class", "submitted", "served", "degraded", "shed",
                      "p50 lat", "p99 lat", "SLO attainment"});
    for (int c = 0; c < static_cast<int>(engine::SloClass::kCount); ++c) {
      const auto& cs = rep.cls[c];
      t.row({engine::to_string(static_cast<engine::SloClass>(c)),
             std::to_string(cs.submitted), std::to_string(cs.served),
             std::to_string(cs.degraded), std::to_string(cs.shed),
             harness::Table::ms(cs.p50_ns), harness::Table::ms(cs.p99_ns),
             harness::Table::fmt(100.0 * cs.attainment) + "%"});
    }
    t.print(std::cout);
  };
  class_table("fault-free soak:", clean);
  class_table("chaos soak (replica 0 outage mid-wave):", chaos);

  std::cout << "\noutage at " << harness::Table::ms(outage_ns)
            << " (frac " << outage_frac << " of fault-free makespan)\n"
            << "failovers        : " << chaos.failovers << "\n"
            << "failover blip    : " << harness::Table::ms(chaos.failover_blip_ns)
            << "  (abort -> resume on a healthy replica)\n"
            << "replicas lost    : " << chaos.replicas_lost << "/" << replicas
            << "\n"
            << "shed rate        : " << harness::Table::fmt(100.0 * chaos.shed_rate)
            << "%  (degraded " << chaos.degraded << ", shed " << chaos.shed
            << ")\n"
            << "waves            : " << clean.waves << " -> " << chaos.waves
            << "\n"
            << "retransmits      : " << chaos.counters.retransmits
            << ", recv timeouts: " << chaos.counters.recv_timeouts
            << ", adoptions: " << chaos.counters.adoptions << "\n"
            << "determinism      : " << (deterministic ? "PASS" : "FAIL")
            << " (chaos soak replays bit-identically)\n";

  bench::record_frontdoor(reg, "failover.clean", clean);
  bench::record_frontdoor(reg, "failover.chaos", chaos);
  reg.gauge("failover.outage_ns").set(outage_ns);

  if (!svg.empty()) {
    harness::SvgChart chart("Serving-tier p99 latency under chaos",
                            "SLO class", "p99 latency (ms)");
    chart.set_categories({"full", "khop", "reach"});
    std::vector<double> a, b;
    for (int c = 0; c < static_cast<int>(engine::SloClass::kCount); ++c) {
      a.push_back(clean.cls[c].p99_ns / 1e6);
      b.push_back(chaos.cls[c].p99_ns / 1e6);
    }
    chart.add_series("fault-free", std::move(a));
    chart.add_series("replica outage", std::move(b));
    chart.write_bars(svg);
    std::cout << "wrote " << svg << "\n";
  }
  bench::write_metrics(opt, reg);

  // --- Gates -------------------------------------------------------------
  const auto& full =
      chaos.cls[static_cast<int>(engine::SloClass::full_distance)];
  bool ok = true;
  if (full.shed != 0) {
    std::cerr << "\nGATE FAIL: " << full.shed
              << " full-distance queries shed/lost under chaos\n";
    ok = false;
  }
  if (full.attainment < 0.99) {
    std::cerr << "\nGATE FAIL: full-distance SLO attainment "
              << 100.0 * full.attainment << "% < 99%\n";
    ok = false;
  }
  if (!deterministic) {
    std::cerr << "\nGATE FAIL: chaos soak is not bit-deterministic\n";
    ok = false;
  }
  if (best_start >= 0 && chaos.failovers < 1) {
    std::cerr << "\nGATE FAIL: the mid-wave outage produced no failover\n";
    ok = false;
  }
  if (ok)
    std::cout << "\nGATE PASS: no full-distance loss, p99 attainment >= 99%, "
                 "bit-deterministic\n";
  return ok ? 0 : 1;
}
