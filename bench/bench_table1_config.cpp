/// Regenerates Table I: the modeled node configuration, plus the derived
/// model quantities (latencies, bandwidths, saturation points) every other
/// bench builds on.

#include <iostream>

#include "common.hpp"
#include "numasim/link_model.hpp"
#include "numasim/mem_model.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int nodes = opt.get_int("nodes", 16);

  bench::print_header("Table I", "Node configuration (modeled)",
                      std::to_string(nodes) + " x eight-socket Xeon X7550");

  const sim::Topology topo = sim::Topology::xeon_x7550_cluster(nodes);
  std::cout << topo.describe() << "\n";

  const sim::CostParams cp;
  const sim::MemModel mem(cp, topo);
  const sim::LinkModel link(cp, topo);

  harness::Table t({"model quantity", "value"});
  t.row({"local L3 hit", harness::Table::fmt(cp.llc_hit_ns, 0) + " ns"});
  t.row({"remote L3 hit (QPI)", harness::Table::fmt(cp.remote_cache_ns, 0) + " ns"});
  t.row({"local DRAM (snooped)", harness::Table::fmt(cp.local_dram_ns, 0) + " ns"});
  t.row({"remote DRAM (avg over mesh)",
         harness::Table::fmt(mem.avg_remote_dram_ns(), 0) + " ns"});
  t.row({"local memory bandwidth / socket",
         harness::Table::fmt(cp.local_bw, 1) + " GB/s"});
  t.row({"QPI bandwidth / link / dir", harness::Table::fmt(cp.qpi_bw, 1) + " GB/s"});
  t.row({"IB payload bandwidth / port",
         harness::Table::fmt(cp.nic_port_bw, 1) + " GB/s"});
  t.row({"node NIC bw, 1 flow", harness::Table::fmt(link.nic_node_bw(1), 1) + " GB/s"});
  t.row({"node NIC bw, 8 flows", harness::Table::fmt(link.nic_node_bw(8), 1) + " GB/s"});
  t.row({"intra-socket OpenMP speedup (8 cores)",
         harness::Table::fmt(mem.omp_speedup(8), 2) + "x"});
  t.print(std::cout);

  std::cout << "\nQPI hop counts from socket 0: ";
  for (int s = 0; s < topo.sockets_per_node(); ++s)
    std::cout << topo.qpi_hops(0, s) << (s + 1 < topo.sockets_per_node() ? " " : "\n");
  return 0;
}
