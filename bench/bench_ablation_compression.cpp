/// Ablation of the compressed, chunk-pipelined frontier exchange
/// (DESIGN.md §10): codec mode x pipeline depth x sharing level, measured
/// wire bytes vs their raw equivalents, the per-level gate decisions of one
/// traversal, and a weak-scaling series locating where the codec's win
/// over the raw exchange flips.
///
/// Expected shape: on comm-bound shapes (>= 8 nodes) the gated codec beats
/// the raw ladder top ("+ Par allgather") by >= 1.15x virtual-time TEPS,
/// because the sparse bottom-up shoulders and every top-down list ride
/// compressed while ~50%-density bulge levels fall back to raw. On one
/// node the wire is cheap shared memory and the codec's encode/decode
/// passes buy nothing — the weak-scaling series shows the win shrinking
/// toward break-even there (the gate falls back to raw rather than lose;
/// force modes, not gated ones, would flip to a loss).

#include <algorithm>
#include <bit>
#include <iostream>

#include "common.hpp"
#include "graph/codec.hpp"
#include "harness/svg.hpp"

namespace {

using namespace numabfs;

bfs::Config coded(bfs::CodecMode m, int chunks, bfs::Config base) {
  base.codec = m;
  base.exchange_chunks = chunks;
  return base;
}

struct WireStats {
  double wire_mb = 0;     // measured, mean over roots, summed over levels
  double raw_mb = 0;      // raw equivalent of the same exchanges
  double overlap_ms = 0;  // pipelining gain (per-rank mean)
  double ratio() const { return wire_mb > 0 ? raw_mb / wire_mb : 1.0; }
};

WireStats wire_stats(const harness::EvalResult& r) {
  WireStats s;
  if (r.per_root.empty()) return s;
  for (const auto& rr : r.per_root)
    for (const auto& t : rr.trace) {
      s.wire_mb += static_cast<double>(t.wire_bytes);
      s.raw_mb += static_cast<double>(t.wire_raw_bytes);
    }
  const double n = static_cast<double>(r.per_root.size());
  s.wire_mb /= n * 1e6;
  s.raw_mb /= n * 1e6;
  s.overlap_ms = r.profile.overlap_saved_ns() / 1e6;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 20, 1);
  const int roots = opt.get_int("roots", 4);
  const int nodes = opt.get_int("nodes", 32);
  const int ppn = opt.get_int("ppn", 4);
  const bool weak = opt.get_int("weak", 1) != 0;
  const std::uint64_t g = opt.get_u64_pow2("granularity", 256);

  bench::print_header(
      "compression ablation",
      "Compressed chunk-pipelined exchange vs the raw Fig. 9 ladder top",
      std::to_string(nodes) + " nodes x ppn " + std::to_string(ppn) +
          ", scale " + std::to_string(scale));

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(scale, 16, opt.get_u64("seed", 20120924));
  harness::ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = ppn;
  harness::Experiment e(bundle, eo);

  // --- codec x chunking x sharing grid ----------------------------------
  struct Row {
    std::string name;
    bfs::Config cfg;
  };
  const std::vector<Row> rows = {
      {"+ Par allgather (raw wire)", bfs::par_allgather()},
      {"+ Granularity (raw wire)", bfs::granularity(g)},
      {"codec=gate   k=1", coded(bfs::CodecMode::gate, 1, bfs::granularity(g))},
      {"codec=gate   k=4", coded(bfs::CodecMode::gate, 4, bfs::granularity(g))},
      {"codec=gate   k=8", coded(bfs::CodecMode::gate, 8, bfs::granularity(g))},
      {"codec=sparse k=4",
       coded(bfs::CodecMode::force_sparse, 4, bfs::granularity(g))},
      {"codec=dense  k=4",
       coded(bfs::CodecMode::force_dense, 4, bfs::granularity(g))},
      {"Original     + gate k=4",
       coded(bfs::CodecMode::gate, 4, bfs::original())},
      {"Share all    + gate k=4",
       coded(bfs::CodecMode::gate, 4, bfs::share_all())},
  };

  harness::Table t({"variant", "TEPS", "vs Par allg", "wire MB", "raw MB",
                    "reduction", "overlap saved"});
  obs::Registry reg;
  double par_teps = 0, gran_teps = 0, best_gate = 0;
  WireStats best_gate_stats;
  for (const auto& row : rows) {
    const harness::EvalResult r = e.run(row.cfg, roots);
    const WireStats s = wire_stats(r);
    bench::record_eval(reg, "ablation." + bench::slug(row.name), r);
    if (par_teps == 0) par_teps = r.harmonic_teps;
    if (row.name.rfind("+ Granularity", 0) == 0) gran_teps = r.harmonic_teps;
    if (row.name.rfind("codec=gate", 0) == 0 && r.harmonic_teps > best_gate) {
      best_gate = r.harmonic_teps;
      best_gate_stats = s;
    }
    t.row({row.name, harness::Table::gteps(r.harmonic_teps),
           harness::Table::fmt(r.harmonic_teps / par_teps, 3) + "x",
           harness::Table::fmt(s.wire_mb, 2),
           harness::Table::fmt(s.raw_mb, 2),
           harness::Table::fmt(s.ratio(), 2) + "x",
           harness::Table::fmt(s.overlap_ms * 1e3, 1) + " us"});
  }
  t.print(std::cout);
  std::cout << "\nbest gated codec: "
            << harness::Table::fmt(best_gate / par_teps, 3)
            << "x vs + Par allgather (the pre-codec ladder), "
            << harness::Table::fmt(gran_teps > 0 ? best_gate / gran_teps : 0, 3)
            << "x vs + Granularity (codec-off twin), wire reduction "
            << harness::Table::fmt(best_gate_stats.ratio(), 2) << "x\n";

  // --- per-level gate decisions (one root, gate k=4) --------------------
  std::cout << "\nper-level gate decisions (root 0, codec=gate k=4):\n";
  const auto [res, parent] = e.run_validated(
      coded(bfs::CodecMode::gate, 4, bfs::granularity(g)), bundle.roots[0]);
  (void)parent;
  harness::Table lt({"level", "dir", "frontier", "codec", "raw KB", "wire KB",
                     "reduction"});
  for (const auto& tr : res.trace) {
    if (tr.exchange_codec < 0) continue;  // final level: no exchange
    lt.row({std::to_string(tr.level), tr.direction ? "bu" : "td",
            std::to_string(tr.frontier_vertices),
            graph::codec::to_string(
                static_cast<graph::codec::Kind>(tr.exchange_codec)),
            harness::Table::fmt(static_cast<double>(tr.wire_raw_bytes) / 1e3, 1),
            harness::Table::fmt(static_cast<double>(tr.wire_bytes) / 1e3, 1),
            harness::Table::fmt(tr.wire_reduction(), 2) + "x"});
  }
  lt.print(std::cout);

  // --- weak scaling: where the codec wins and where it loses ------------
  std::vector<std::string> cats;
  std::vector<double> raw_series, codec_series;
  if (weak) {
    const int base_scale = opt.get_int("base-scale", std::max(1, scale - 4));
    std::cout << "\nweak scaling (scale " << base_scale
              << "+log2(nodes), ppn " << ppn << "):\n";
    harness::Table wt({"nodes", "scale", "raw TEPS", "codec TEPS", "speedup",
                       "wire reduction"});
    int flip_nodes = -1;
    double prev = 0;
    for (int n : {1, 2, 4, 8, 16, 32}) {
      if (n > std::max(nodes, 16)) break;
      const int s = base_scale + std::countr_zero(static_cast<unsigned>(n));
      const harness::GraphBundle b =
          harness::GraphBundle::make(s, 16, opt.get_u64("seed", 20120924));
      harness::ExperimentOptions weo;
      weo.nodes = n;
      weo.ppn = ppn;
      harness::Experiment we(b, weo);
      const harness::EvalResult raw = we.run(bfs::granularity(g), roots);
      const harness::EvalResult cod =
          we.run(coded(bfs::CodecMode::gate, 4, bfs::granularity(g)), roots);
      const double sp = cod.harmonic_teps / raw.harmonic_teps;
      if (prev != 0 && ((prev < 1.0) != (sp < 1.0))) flip_nodes = n;
      prev = sp;
      wt.row({std::to_string(n), std::to_string(s),
              harness::Table::gteps(raw.harmonic_teps),
              harness::Table::gteps(cod.harmonic_teps),
              harness::Table::fmt(sp, 3) + "x",
              harness::Table::fmt(wire_stats(cod).ratio(), 2) + "x"});
      cats.push_back(std::to_string(n));
      raw_series.push_back(raw.harmonic_teps / 1e9);
      codec_series.push_back(cod.harmonic_teps / 1e9);
    }
    wt.print(std::cout);
    if (flip_nodes > 0)
      std::cout << "\ncodec win/loss flips at " << flip_nodes << " nodes\n";
    else
      std::cout << "\nno win/loss flip inside the swept node range\n";
  }

  if (opt.has("svg") && !cats.empty()) {
    harness::SvgChart chart("compression ablation — weak scaling", "nodes",
                            "GTEPS (virtual)");
    chart.set_categories(cats);
    chart.add_series("raw wire", raw_series);
    chart.add_series("gated codec", codec_series);
    const std::string path =
        opt.get_str("svg", ".") + "/ablation_compression.svg";
    chart.write_lines(path);
    std::cout << "\nwrote " << path << "\n";
  }
  bench::write_metrics(opt, reg);
  return 0;
}
