/// Regenerates Fig. 10: performance of the "Original" implementation under
/// the execution policies (noflag / interleave / bind-to-socket x ppn) on a
/// single eight-socket node.
///
/// Paper shape: ppn=8.bind-to-socket wins — 1.74x over ppn=1.interleave and
/// 2.08x over ppn=8.noflag; ppn=1.interleave beats ppn=1.noflag.

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 17, 1);
  const int roots = opt.get_int("roots", 8);

  bench::print_header("Fig. 10", "Execution policies on one node",
                      "scale " + std::to_string(scale) + ", " +
                          std::to_string(roots) + " roots (paper: scale 28)");

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(scale, 16, opt.get_u64("seed", 20120924));

  struct Row {
    const char* name;
    int ppn;
    bfs::BindMode bind;
  };
  const Row rows[] = {
      {"ppn=1.noflag", 1, bfs::BindMode::noflag},
      {"ppn=1.interleave", 1, bfs::BindMode::interleave},
      {"ppn=8.noflag", 8, bfs::BindMode::noflag},
      {"ppn=8.interleave", 8, bfs::BindMode::interleave},
      {"ppn=8.bind-to-socket", 8, bfs::BindMode::bind_to_socket},
  };

  harness::Table t({"policy", "TEPS", "vs ppn=1.interleave"});
  double baseline = 0;
  std::vector<double> teps;
  for (const Row& r : rows) {
    harness::ExperimentOptions eo;
    eo.nodes = 1;
    eo.ppn = r.ppn;
    harness::Experiment e(bundle, eo);
    bfs::Config cfg;
    cfg.bind = r.bind;
    const harness::EvalResult res = e.run(cfg, roots);
    teps.push_back(res.harmonic_teps);
    if (std::string(r.name) == "ppn=1.interleave") baseline = res.harmonic_teps;
  }
  for (size_t i = 0; i < std::size(rows); ++i)
    t.row({rows[i].name, harness::Table::gteps(teps[i]),
           harness::Table::fmt(teps[i] / baseline, 2) + "x"});
  t.print(std::cout);

  std::cout << "\npaper: bind-to-socket = 1.74x interleave, 2.08x ppn=8.noflag\n";
  return 0;
}
