/// The 2-D partitioned (Buluc & Madduri-style) direction-optimizing BFS vs
/// the paper's 1-D variants, on the same graph and the same simulated
/// cluster. The paper's related work argues the two are orthogonal: 2-D
/// shrinks the frontier exchange from the full bitmap to one col-band per
/// level, while the paper's sharing/hierarchy attacks the intra-node share
/// of whatever exchange remains. At this size (8 nodes) the 1-D still wins
/// end-to-end; bench_ablation_2d locates the crossover.

#include <iostream>

#include "bfs2d/bfs2d.hpp"
#include "common.hpp"
#include "graph/validate.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 18, 1);
  const int roots = opt.get_int("roots", 4);
  const int nodes = opt.get_int("nodes", 8);
  const int ppn = 8;

  bench::print_header("2-D partitioning (measured)",
                      "1-D hybrid variants vs 2-D direction-optimizing BFS",
                      std::to_string(nodes) + " nodes x " +
                          std::to_string(ppn) + " = " +
                          std::to_string(nodes * ppn) +
                          " ranks, scale " + std::to_string(scale));

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(scale, 16, opt.get_u64("seed", 20120924));

  harness::ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = ppn;
  harness::Experiment e(bundle, eo);
  obs::Registry reg;
  auto tracer = bench::make_tracer(opt, e.cluster());

  harness::Table t({"implementation", "TEPS", "comm share", "comm/level"});
  const auto add_1d = [&](const char* name, const bfs::Config& cfg) {
    const harness::EvalResult r = e.run(cfg, roots);
    const double comm = r.profile.comm_ns();
    const int levels = std::max(1, static_cast<int>(
                                       r.per_root[0].directions.size()));
    t.row({name, harness::Table::gteps(r.harmonic_teps),
           harness::Table::pct(comm / r.profile.total_ns()),
           harness::Table::ms(comm / levels, 3)});
    bench::record_eval(reg, "bench2d." + bench::slug(name), r);
  };
  add_1d("1-D Original (hybrid)", bfs::original());
  add_1d("1-D + all optimizations", bfs::granularity(256));
  add_1d("1-D + codec", bfs::compressed(256, 4));

  // 2-D on the same cluster: rows span whole nodes (ppn | C).
  const bfs2d::Grid2d grid =
      bfs2d::Grid2d::make(bundle.csr.num_vertices(), nodes * ppn, ppn);
  const bfs2d::DistGraph2d d2 = bfs2d::DistGraph2d::build(bundle.csr, grid);
  const auto add_2d = [&](const char* name, const bfs2d::Bfs2dOptions& o2) {
    std::vector<double> teps;
    double comm_share = 0, comm_level = 0;
    for (int i = 0; i < roots; ++i) {
      std::vector<graph::Vertex> parent;
      const bfs2d::Bfs2dResult r = bfs2d::run_bfs_2d(
          e.cluster(), d2, bundle.roots[static_cast<size_t>(i)], &parent, o2);
      const auto v = graph::validate_bfs_tree(
          bundle.csr, bundle.roots[static_cast<size_t>(i)], parent);
      if (!v.ok) {
        std::cerr << "2-D validation failed (" << name << "): " << v.error
                  << "\n";
        std::exit(1);
      }
      teps.push_back(r.teps());
      const double comm = r.profile_avg.comm_ns();
      comm_share += comm / r.profile_avg.total_ns();
      comm_level += comm / std::max(1, r.levels);
    }
    const double hm = harness::harmonic_mean(teps);
    t.row({name, harness::Table::gteps(hm),
           harness::Table::pct(comm_share / roots),
           harness::Table::ms(comm_level / roots, 3)});
    reg.gauge("bench2d." + bench::slug(name) + ".harmonic_teps").set(hm);
  };
  {
    bfs2d::Bfs2dOptions o2;
    add_2d("2-D flat (validated)", o2);
  }
  {
    bfs2d::Bfs2dOptions o2;
    o2.hier = rt::coll_model::HierLevel::node;
    add_2d("2-D + hier collectives", o2);
  }
  {
    bfs2d::Bfs2dOptions o2;
    o2.hier = rt::coll_model::HierLevel::node;
    o2.codec = bfs::CodecMode::gate;
    o2.exchange_chunks = 4;
    add_2d("2-D + hier + codec", o2);
  }
  t.print(std::cout);
  bench::write_metrics(opt, reg);
  bench::write_trace(opt, tracer);

  std::cout
      << "\nreading: the 2-D expand moves one col-band (n/C per rank)\n"
         "instead of the whole bitmap, but each frontier vertex is\n"
         "re-processed by R ranks, so at this cluster size the 1-D still\n"
         "wins end-to-end. The crossover bench (bench_ablation_2d) scales\n"
         "the same comparison to 256 nodes, where the O(n) replicated\n"
         "frontier of the 1-D becomes the ceiling the related work\n"
         "predicts and the 2-D takes over.\n";
  return 0;
}
