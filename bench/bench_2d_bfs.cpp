/// Future-work, measured: the 2-D partitioned (Buluc & Madduri-style)
/// top-down BFS vs the paper's 1-D variants, on the same graph and the
/// same simulated 8x8-grid cluster (8 nodes x 8 ranks). The paper's
/// related work argues the two are orthogonal: 2-D shrinks the frontier
/// exchange from the full bitmap to one band per level, while the paper's
/// sharing attacks the intra-node share of whatever exchange remains.

#include <iostream>

#include "bfs2d/bfs2d.hpp"
#include "common.hpp"
#include "graph/validate.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 18, 1);
  const int roots = opt.get_int("roots", 4);
  const int nodes = opt.get_int("nodes", 8);

  bench::print_header("2-D partitioning (measured)",
                      "1-D hybrid variants vs 2-D top-down BFS",
                      std::to_string(nodes) + " nodes x 8 = " +
                          std::to_string(nodes * 8) + " ranks (square grid), "
                          "scale " + std::to_string(scale));

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(scale, 16, opt.get_u64("seed", 20120924));

  harness::ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = 8;
  harness::Experiment e(bundle, eo);

  harness::Table t({"implementation", "TEPS", "comm share", "comm/level"});
  const auto add_1d = [&](const char* name, const bfs::Config& cfg) {
    const harness::EvalResult r = e.run(cfg, roots);
    const double comm = r.profile.comm_ns();
    const int levels = std::max(1, static_cast<int>(
                                       r.per_root[0].directions.size()));
    t.row({name, harness::Table::gteps(r.harmonic_teps),
           harness::Table::pct(comm / r.profile.total_ns()),
           harness::Table::ms(comm / levels, 3)});
  };
  add_1d("1-D Original (hybrid)", bfs::original());
  add_1d("1-D + all optimizations", bfs::granularity(256));
  {
    bfs::Config td = bfs::original();
    td.direction = bfs::Direction::top_down_only;
    add_1d("1-D pure top-down", td);
  }

  // 2-D: same graph, same cluster shape (requires a square rank count).
  const bfs2d::Grid2d grid(bundle.csr.num_vertices(), nodes * 8);
  const bfs2d::DistGraph2d d2 = bfs2d::DistGraph2d::build(bundle.csr, grid);
  std::vector<double> teps;
  double comm_share = 0, comm_level = 0;
  for (int i = 0; i < roots; ++i) {
    std::vector<graph::Vertex> parent;
    const bfs2d::Bfs2dResult r = bfs2d::run_bfs_2d(
        e.cluster(), d2, bundle.roots[static_cast<size_t>(i)], &parent);
    const auto v = graph::validate_bfs_tree(
        bundle.csr, bundle.roots[static_cast<size_t>(i)], parent);
    if (!v.ok) {
      std::cerr << "2-D validation failed: " << v.error << "\n";
      return 1;
    }
    teps.push_back(r.teps(v.traversed_edges()));
    const double comm = r.profile_avg.comm_ns();
    comm_share += comm / r.profile_avg.total_ns();
    comm_level += comm / std::max(1, r.levels);
  }
  t.row({"2-D top-down (validated)",
         harness::Table::gteps(harness::harmonic_mean(teps)),
         harness::Table::pct(comm_share / roots),
         harness::Table::ms(comm_level / roots, 3)});

  // The composition: the paper's sharing applied to the 2-D fold (the row
  // exchange is intra-node with this layout).
  {
    bfs2d::Bfs2dOptions o2;
    o2.shared_fold = true;
    std::vector<double> teps2;
    double share2 = 0, level2 = 0;
    for (int i = 0; i < roots; ++i) {
      std::vector<graph::Vertex> parent;
      const bfs2d::Bfs2dResult r = bfs2d::run_bfs_2d(
          e.cluster(), d2, bundle.roots[static_cast<size_t>(i)], &parent, o2);
      const auto v = graph::validate_bfs_tree(
          bundle.csr, bundle.roots[static_cast<size_t>(i)], parent);
      if (!v.ok) return 1;
      teps2.push_back(r.teps(v.traversed_edges()));
      share2 += r.profile_avg.comm_ns() / r.profile_avg.total_ns();
      level2 += r.profile_avg.comm_ns() / std::max(1, r.levels);
    }
    t.row({"2-D + shared fold (composition)",
           harness::Table::gteps(harness::harmonic_mean(teps2)),
           harness::Table::pct(share2 / roots),
           harness::Table::ms(level2 / roots, 3)});
  }
  t.print(std::cout);

  std::cout
      << "\nreading: the 2-D *expand* moves one band instead of the whole\n"
         "bitmap (see test Bfs2d.ExpandSmallerThanOneDAllgather), but each\n"
         "frontier vertex is re-processed by sqrt(np) ranks and there is no\n"
         "direction switching, so end-to-end it trails every 1-D variant at\n"
         "this cluster size. That matches the literature's positioning: 2-D\n"
         "pays off at much larger rank counts, and the paper's sharing\n"
         "optimizations would apply to its row (intra-node) exchanges —\n"
         "the composition the paper calls orthogonal.\n";
  return 0;
}
