/// Regenerates Fig. 12: communication cost of the "Original" implementation
/// when weak scaling 1 -> 8 nodes (scale grows with the node count):
/// absolute time per bottom-up communication phase for ppn=1.interleave and
/// ppn=8.bind-to-socket, plus ppn=8's bottom-up-communication share of the
/// total execution time.
///
/// Paper shape: per-phase comm cost grows steeply under weak scaling;
/// ppn=8 pays ~2.34x ppn=1 at 8 nodes; the comm share grows 12% -> 54%.

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int base_scale = opt.get_int_min("base-scale", 16, 1);
  const int roots = opt.get_int("roots", 4);

  bench::print_header(
      "Fig. 12", "Communication cost under weak scaling (Original)",
      "scale " + std::to_string(base_scale) + "+log2(nodes), " +
          std::to_string(roots) + " roots (paper: scale 28+log2(nodes))");

  harness::Table t({"nodes", "scale", "ppn=1 comm/phase", "ppn=8 comm/phase",
                    "ratio", "ppn=8 bu-comm share"});

  double ratio_at_8 = 0, share_at_8 = 0;
  for (int nodes : {1, 2, 4, 8}) {
    const int scale = base_scale + std::countr_zero(static_cast<unsigned>(nodes));
    const harness::GraphBundle bundle =
        harness::GraphBundle::make(scale, 16, opt.get_u64("seed", 20120924));

    harness::ExperimentOptions eo1;
    eo1.nodes = nodes;
    eo1.ppn = 1;
    harness::Experiment e1(bundle, eo1);
    const harness::EvalResult r1 = e1.run(bench::ppn1_interleave(), roots);

    harness::ExperimentOptions eo8;
    eo8.nodes = nodes;
    eo8.ppn = 8;
    harness::Experiment e8(bundle, eo8);
    const harness::EvalResult r8 = e8.run(bfs::original(), roots);

    const double ratio = r1.avg_bu_comm_phase_ns > 0
                             ? r8.avg_bu_comm_phase_ns / r1.avg_bu_comm_phase_ns
                             : 0;
    t.row({std::to_string(nodes), std::to_string(scale),
           harness::Table::ms(r1.avg_bu_comm_phase_ns, 3),
           harness::Table::ms(r8.avg_bu_comm_phase_ns, 3),
           harness::Table::fmt(ratio, 2) + "x",
           harness::Table::pct(r8.bu_comm_fraction)});
    if (nodes == 8) {
      ratio_at_8 = ratio;
      share_at_8 = r8.bu_comm_fraction;
    }
  }
  t.print(std::cout);

  std::cout << "\nmeasured at 8 nodes: ppn=8/ppn=1 comm ratio = "
            << harness::Table::fmt(ratio_at_8, 2) << "x, bu-comm share = "
            << harness::Table::pct(share_at_8)
            << "\npaper: ratio 2.34x; share grows 12% (1 node) -> 54% (8 nodes)\n";
  return 0;
}
