/// Chaos-mode sweep: BFS cost of surviving injected faults. Not a paper
/// figure — it quantifies the robustness layer this repo adds on top of the
/// reproduction: retransmission under drops/corruption, degraded links,
/// stragglers, checkpoint overhead, and full crash recovery.
///
/// Each row attaches one fault plan to the same cluster/graph and reports
/// the virtual-time overhead over the clean baseline. A custom plan can be
/// injected with --faults=<spec> (see src/faults/fault_plan.hpp for the
/// syntax), e.g.:
///
///   bench_fault_tolerance --faults=seed:42,crash:rank=3@level=4,drop:prob=0.05

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);
  const int scale = opt.get_int_min("scale", 16, 1);
  const int roots = opt.get_int("roots", 4);
  const int nodes = opt.get_int_min("nodes", 4, 1);
  const int ppn = opt.get_int_min("ppn", 4, 1);
  const std::string custom = opt.get_str("faults", "");

  bench::print_header(
      "chaos mode", "Fault-tolerant BFS under injected faults",
      "scale " + std::to_string(scale) + ", " + std::to_string(nodes) +
          " nodes x ppn " + std::to_string(ppn) + ", " +
          std::to_string(roots) + " roots");

  std::vector<std::pair<std::string, std::string>> rows = {
      {"clean", ""},
      {"checkpoints only", "checkpoint:on"},
      {"drop 1%", "seed:42,drop:prob=0.01"},
      {"drop 5%", "seed:42,drop:prob=0.05"},
      {"drop 20%", "seed:42,drop:prob=0.2"},
      {"corrupt 2%", "seed:42,corrupt:prob=0.02"},
      {"straggler 2x", "seed:42,straggle:rank=1@factor=2"},
      {"straggler 4x", "seed:42,straggle:rank=1@factor=4"},
      {"link at 50%", "seed:42,degrade:node=1@factor=0.5"},
      {"link at 25%", "seed:42,degrade:node=1@factor=0.25"},
      {"flapping link", "seed:42,flap:node=0@factor=0.2@period=2e6@duty=0.5"},
      {"crash + recovery", "seed:42,crash:rank=3@level=2"},
  };
  if (!custom.empty()) rows = {{"clean", ""}, {"--faults", custom}};

  // Build every injector up front so a typo (or an out-of-range rank/node)
  // fails with a clean message before the long runs start.
  std::vector<std::shared_ptr<faults::FaultInjector>> injectors;
  for (const auto& [name, spec] : rows) {
    try {
      const faults::FaultPlan plan = faults::FaultPlan::parse(spec);
      injectors.push_back(
          plan.empty() && !plan.checkpointing()
              ? nullptr
              : std::make_shared<faults::FaultInjector>(plan, nodes * ppn,
                                                        ppn));
    } catch (const std::invalid_argument& e) {
      std::cerr << "bad fault spec for '" << name << "': " << e.what() << "\n";
      return 1;
    }
  }

  const harness::GraphBundle bundle = harness::GraphBundle::make(
      scale, 16, opt.get_u64("seed", 20120924), std::max(roots, 1));
  harness::ExperimentOptions eo;
  eo.nodes = nodes;
  eo.ppn = ppn;
  harness::Experiment e(bundle, eo);
  const bfs::Config cfg = bfs::share_all();

  harness::Table t(
      {"fault plan", "mean time", "overhead", "TEPS", "recoveries", "lost"});
  double clean_ns = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    e.cluster().set_fault_injector(injectors[i]);
    const harness::EvalResult res = e.run(cfg, roots);
    int recoveries = 0, lost = 0;
    for (const bfs::BfsRunResult& r : res.per_root) {
      recoveries += r.recoveries;
      lost = std::max(lost, r.ranks_lost);
    }
    if (i == 0) clean_ns = res.mean_time_ns;
    const double overhead = clean_ns > 0 ? res.mean_time_ns / clean_ns - 1 : 0;
    t.row({rows[i].first, harness::Table::ms(res.mean_time_ns),
           harness::Table::pct(overhead), harness::Table::gteps(res.harmonic_teps),
           std::to_string(recoveries), std::to_string(lost)});
  }
  t.print(std::cout);

  std::cout << "\noverhead is virtual-time cost vs the clean run; 'recoveries'"
               "\ncounts level re-runs after a crash (summed over roots).\n";
  return 0;
}
