/// \file quickstart.cpp
/// 60-second tour of numabfs: generate a small Graph500 R-MAT graph,
/// simulate a 4-node NUMA cluster (8 sockets each), run the paper's fully
/// optimized hybrid BFS, validate the tree, and print the result.
///
///   ./quickstart [--scale=16] [--nodes=4]

#include <iostream>

#include "graph/validate.hpp"
#include "harness/graph500.hpp"
#include "harness/options.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);

  // 1. One R-MAT graph (Graph500 parameters) + evaluation roots.
  const harness::GraphBundle bundle =
      harness::GraphBundle::make(opt.get_int_min("scale", 16, 1));

  // 2. A simulated cluster: N eight-socket Xeon X7550 nodes, one MPI
  //    process per socket (the paper's recommended mapping).
  harness::ExperimentOptions eo;
  eo.nodes = opt.get_int("nodes", 4);
  eo.ppn = 8;
  harness::Experiment exp(bundle, eo);

  // 3. The fully optimized variant: shared queues, parallel allgather,
  //    granularity-256 summary (the paper's Fig. 9 endpoint).
  const bfs::Config cfg = bfs::granularity(256);

  // 4. Run one BFS and validate it against the Graph500 rules.
  const graph::Vertex root = bundle.roots.front();
  const auto [result, parent] = exp.run_validated(cfg, root);
  const auto v = graph::validate_bfs_tree(bundle.csr, root, parent);

  std::cout << "graph      : scale " << bundle.params.scale << " ("
            << bundle.params.num_vertices() << " vertices, "
            << bundle.params.num_edges() << " edges)\n"
            << "cluster    : " << eo.nodes << " nodes x 8 sockets ("
            << exp.cluster().topo().total_cores() << " cores)\n"
            << "variant    : " << cfg.name() << "\n"
            << "root       : " << root << "\n"
            << "validation : " << (v.ok ? "OK" : "FAILED: " + v.error) << "\n"
            << "visited    : " << result.visited << " vertices in "
            << result.levels << " levels (directions:";
  for (int d : result.directions) std::cout << (d ? " bu" : " td");
  std::cout << ")\n"
            << "virtual t  : " << result.time_ns / 1e6 << " ms\n"
            << "TEPS       : " << result.teps() / 1e9 << " GTEPS (virtual)\n"
            << "breakdown  : " << result.profile_avg.breakdown() << "\n";
  return v.ok ? 0 : 1;
}
