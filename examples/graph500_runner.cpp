/// \file graph500_runner.cpp
/// Full Graph500-style evaluation driver — the closest thing to the
/// paper's actual experiment binary. Generates an R-MAT graph, runs N BFS
/// iterations of a configurable variant on a configurable cluster shape,
/// reports the harmonic-mean TEPS and the phase breakdown, and (optionally)
/// validates every tree.
///
///   ./graph500_runner --scale=20 --nodes=16 --ppn=8 --roots=16
///       --sharing=all --par-allgather --granularity=256 --validate
///
/// Options:
///   --scale=N          log2 of vertex count (default 18)
///   --edgefactor=N     edges per vertex (default 16)
///   --seed=N           generator seed (default 20120924)
///   --nodes=N          cluster nodes (default 4)
///   --ppn=N            processes per node, 1 or divisor of 8 (default 8)
///   --roots=N          BFS iterations (default 16, Graph500 uses 64)
///   --bind=MODE        noflag | interleave | bind (default bind)
///   --sharing=LEVEL    none | in_queue | all (default none)
///   --par-allgather    enable subgroup-parallel allgather (needs sharing=all)
///   --granularity=N    summary granularity (default 64)
///   --leader-allgather use leader-based allgather when sharing=none
///   --direction=D      hybrid | top-down | bottom-up (default hybrid)
///   --alpha=F --beta=F switching thresholds (defaults 14, 24)
///   --weak-node=N      degrade node N's NIC by --weak-factor (default off)
///   --validate         validate every BFS tree against the Graph500 rules
///   --trace            print the per-level trace of the first root
///   --csv              emit one machine-readable CSV line at the end
///   --save=FILE        write the generated edge list (binary, reusable)
///   --load=FILE        evaluate a saved/external edge list instead of
///                      generating one (--scale/--edgefactor/--seed ignored)

#include <iostream>
#include <stdexcept>

#include "graph/edgelist_io.hpp"
#include "graph/validate.hpp"
#include "harness/graph500.hpp"
#include "harness/options.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) try {
  using namespace numabfs;
  harness::Options opt(argc, argv);

  const int scale = opt.get_int_min("scale", 18, 1);
  const int roots = opt.get_int("roots", 16);

  bfs::Config cfg;
  const std::string bind = opt.get_str("bind", "bind");
  cfg.bind = bind == "noflag"      ? bfs::BindMode::noflag
             : bind == "interleave" ? bfs::BindMode::interleave
                                    : bfs::BindMode::bind_to_socket;
  const std::string sharing = opt.get_str("sharing", "none");
  cfg.sharing = sharing == "all"        ? bfs::Sharing::all
                : sharing == "in_queue" ? bfs::Sharing::in_queue
                                        : bfs::Sharing::none;
  cfg.parallel_allgather = opt.get_bool("par-allgather", false);
  cfg.summary_granularity = opt.get_u64_pow2("granularity", 64);
  if (opt.get_bool("leader-allgather", false))
    cfg.base_algo = rt::AllgatherAlgo::leader_ring;
  const std::string dir = opt.get_str("direction", "hybrid");
  cfg.direction = dir == "top-down"    ? bfs::Direction::top_down_only
                  : dir == "bottom-up" ? bfs::Direction::bottom_up_only
                                       : bfs::Direction::hybrid;
  cfg.alpha = opt.get_double("alpha", 14.0);
  cfg.beta = opt.get_double("beta", 24.0);
  if (const std::string err = cfg.validate(); !err.empty())
    throw std::invalid_argument(err);

  harness::GraphBundle bundle = [&] {
    if (opt.has("load")) {
      const std::string path = opt.get_str("load", "");
      std::cout << "loading edge list " << path << "...\n";
      const graph::LoadedEdges in = graph::load_edges(path);
      return harness::GraphBundle::from_edges(in.num_vertices, in.edges,
                                              opt.get_u64("seed", 20120924),
                                              std::max(roots, 64));
    }
    std::cout << "generating scale-" << scale << " R-MAT graph...\n";
    return harness::GraphBundle::make(scale, opt.get_int("edgefactor", 16),
                                      opt.get_u64("seed", 20120924),
                                      std::max(roots, 64));
  }();
  if (opt.has("save")) {
    const auto edges = graph::rmat_edges(bundle.params);
    graph::save_edges(opt.get_str("save", ""), bundle.params.num_vertices(),
                      edges);
    std::cout << "saved edge list to " << opt.get_str("save", "") << "\n";
  }

  harness::ExperimentOptions eo;
  eo.nodes = opt.get_int("nodes", 4);
  eo.ppn = opt.get_int("ppn", 8);
  eo.weak_node = opt.get_int("weak-node", -1);
  eo.weak_node_factor = opt.get_double_in("weak-factor", 0.5, 0.0, 1.0, true);
  harness::Experiment exp(bundle, eo);

  std::cout << "cluster: " << exp.cluster().topo().describe()
            << "variant: " << cfg.name() << "\n"
            << "running " << roots << " BFS iterations...\n\n";

  const harness::EvalResult res = exp.run(cfg, roots);

  if (opt.get_bool("validate", false)) {
    int ok = 0;
    for (int i = 0; i < res.roots; ++i) {
      const graph::Vertex root = bundle.roots[static_cast<size_t>(i)];
      const auto [r, parent] = exp.run_validated(cfg, root);
      const auto v = graph::validate_bfs_tree(bundle.csr, root, parent);
      if (!v.ok) {
        std::cout << "VALIDATION FAILED root " << root << ": " << v.error
                  << "\n";
        return 1;
      }
      ++ok;
    }
    std::cout << "validation: " << ok << "/" << res.roots << " trees OK\n";
  }

  harness::Table t({"metric", "value"});
  t.row({"harmonic mean TEPS", harness::Table::gteps(res.harmonic_teps)});
  t.row({"mean time per BFS", harness::Table::ms(res.mean_time_ns)});
  t.row({"mean vertices visited", std::to_string(res.visited_mean)});
  t.row({"mean bottom-up levels", std::to_string(res.mean_bu_levels)});
  t.row({"avg bottom-up comm phase",
         harness::Table::ms(res.avg_bu_comm_phase_ns, 3)});
  t.row({"bottom-up comm share", harness::Table::pct(res.bu_comm_fraction)});
  t.print(std::cout);
  std::cout << "\nphase breakdown (mean over ranks and roots):\n  "
            << res.profile.breakdown() << "\n";

  const auto& cnt = res.profile.counters();
  std::cout << "\nmeasured kernel counters (summed):\n"
            << "  edges scanned      " << cnt.edges_scanned << "\n"
            << "  summary probes     " << cnt.summary_probes << " ("
            << harness::Table::pct(
                   cnt.summary_probes
                       ? static_cast<double>(cnt.summary_zero_skips) /
                             static_cast<double>(cnt.summary_probes)
                       : 0.0)
            << " zero-skips)\n"
            << "  in_queue probes    " << cnt.inqueue_probes << "\n"
            << "  intra-node bytes   " << cnt.bytes_intra_node << "\n"
            << "  inter-node bytes   " << cnt.bytes_inter_node << "\n";

  if (opt.get_bool("trace", false) && !res.per_root.empty()) {
    std::cout << "\nper-level trace (first root):\n";
    harness::Table lt({"level", "dir", "frontier", "discovered",
                       "edges scanned", "skip rate", "comp", "comm"});
    for (const auto& lv : res.per_root.front().trace)
      lt.row({std::to_string(lv.level), lv.direction ? "bu" : "td",
              std::to_string(lv.frontier_vertices),
              std::to_string(lv.discovered),
              std::to_string(lv.edges_scanned),
              lv.direction ? harness::Table::pct(lv.skip_rate()) : "-",
              harness::Table::ms(lv.comp_ns, 3),
              harness::Table::ms(lv.comm_ns, 3)});
    lt.print(std::cout);
  }

  if (opt.get_bool("csv", false))
    std::cout << "\ncsv,scale=" << scale << ",nodes=" << eo.nodes
              << ",ppn=" << eo.ppn << ",variant=" << cfg.name()
              << ",gteps=" << res.harmonic_teps / 1e9
              << ",bu_comm_share=" << res.bu_comm_fraction << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "graph500_runner: " << e.what() << "\n";
  return 2;
}
