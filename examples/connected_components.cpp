/// \file connected_components.cpp
/// BFS as a building block (the paper's motivation: spanning trees,
/// connected components, shortest paths all reduce to BFS): label the
/// connected components of an R-MAT graph and print the size distribution —
/// R-MAT graphs have one giant component and a dust of tiny ones.
///
/// The sweep is submitted through the query engine: up to 64 unlabeled
/// seeds go out as one multi-source wave (one lane each), so the dust of
/// tiny components is labeled by a handful of waves instead of thousands
/// of one-at-a-time BFS runs. Two seeds can land in the same component;
/// the later lane simply rediscovers it and is skipped at labeling time.
///
///   ./connected_components [--scale=14] [--nodes=2]

#include <algorithm>
#include <iostream>
#include <map>

#include "engine/engine.hpp"
#include "harness/graph500.hpp"
#include "harness/options.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(opt.get_int_min("scale", 14, 1));
  harness::ExperimentOptions eo;
  eo.nodes = opt.get_int("nodes", 2);
  eo.ppn = 8;
  harness::Experiment exp(bundle, eo);

  const graph::Csr& g = bundle.csr;
  const std::uint64_t n = g.num_vertices();
  std::vector<std::uint32_t> component(n, 0);  // 0 = unlabeled
  std::uint32_t next_label = 0;
  double virtual_ns = 0;
  std::uint64_t waves = 0;
  std::uint64_t singletons = 0;
  std::map<std::uint64_t, std::uint64_t> size_histogram;  // size -> count

  // The engine serves each batch of seeds as one wave; the sink labels the
  // components from the per-lane distance arrays. Distances suffice, so the
  // (large) per-lane parent arrays are not tracked.
  const bfs::Config cfg = bfs::granularity(256);
  engine::EngineConfig ec;
  ec.max_batch = engine::kMaxLanes;
  ec.track_parents = false;
  bool overlap_error = false;
  ec.sink = [&](std::span<const engine::WaveQuery> wq,
                const engine::WaveResult&, engine::WaveState& ws) {
    for (std::size_t l = 0; l < wq.size(); ++l) {
      // A lane whose seed was labeled by an earlier lane of this wave
      // rediscovered that component; its coverage is identical, skip it.
      if (component[wq[l].source] != 0) continue;
      ++next_label;
      const auto dist =
          engine::gather_lane_distances(exp.dist(), ws, static_cast<int>(l));
      std::uint64_t size = 0;
      for (std::uint64_t u = 0; u < n; ++u) {
        if (dist[u] == engine::kUnreached) continue;
        if (component[u] != 0) {  // BFS leaked into a labeled component
          std::cerr << "component overlap at vertex " << u << "\n";
          overlap_error = true;
          return;
        }
        component[u] = next_label;
        ++size;
      }
      ++size_histogram[size];
    }
  };
  engine::QueryEngine eng(exp.cluster(), exp.dist(), cfg, ec);

  std::uint64_t cursor = 0;
  std::uint64_t qid = 0;
  while (cursor < n) {
    // Collect the next batch of unlabeled seeds (isolated vertices become
    // singleton components without occupying a lane).
    std::vector<engine::Query> batch;
    for (; cursor < n && batch.size() < engine::kMaxLanes; ++cursor) {
      const auto v = static_cast<graph::Vertex>(cursor);
      if (component[cursor] != 0) continue;
      if (g.degree(v) == 0) {
        component[cursor] = ++next_label;
        ++singletons;
        ++size_histogram[1];
        continue;
      }
      engine::Query q;
      q.id = qid++;
      q.kind = engine::QueryKind::full_distances;
      q.source = v;
      batch.push_back(q);
    }
    if (batch.empty()) continue;
    const engine::EngineReport rep = eng.serve(batch);
    virtual_ns += rep.total_ns;
    waves += static_cast<std::uint64_t>(rep.waves);
    if (overlap_error) return 1;
  }

  std::uint64_t labeled = 0;
  for (std::uint64_t v = 0; v < n; ++v) labeled += component[v] != 0;
  if (labeled != n) {
    std::cerr << "not all vertices labeled\n";
    return 1;
  }

  std::cout << "graph: scale " << bundle.params.scale << ", " << n
            << " vertices\n"
            << "components: " << next_label << " (" << singletons
            << " isolated vertices), labeled by " << waves
            << " engine waves\n"
            << "virtual BFS time total: " << virtual_ns / 1e6 << " ms\n\n";

  harness::Table t({"component size", "count"});
  // Largest few first, then the dust.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rows(
      size_histogram.rbegin(), size_histogram.rend());
  for (size_t i = 0; i < rows.size() && i < 10; ++i)
    t.row({std::to_string(rows[i].first), std::to_string(rows[i].second)});
  t.print(std::cout);

  const double giant =
      static_cast<double>(rows.front().first) / static_cast<double>(n);
  std::cout << "\ngiant component: " << harness::Table::pct(giant)
            << " of all vertices (scale-free graphs concentrate here — the"
               " reason Graph500 roots are sampled from non-isolated"
               " vertices)\n";
  return 0;
}
