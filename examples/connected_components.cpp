/// \file connected_components.cpp
/// BFS as a building block (the paper's motivation: spanning trees,
/// connected components, shortest paths all reduce to BFS): label the
/// connected components of an R-MAT graph and print the size distribution —
/// R-MAT graphs have one giant component and a dust of tiny ones.
///
/// The labeling runs as ONE min-label propagation program
/// (engine::ProgramWorkload::components) submitted through the query engine
/// as a first-class `components` query: every vertex seeds its own id, the
/// minimum label floods each component through the same frontier-exchange
/// machinery BFS waves use (direction choice, codec gate, fault tolerance),
/// and the fixpoint labels every component in one dispatch — including the
/// dust, which the old BFS-loop sweep needed a wave per 64 seeds to reach.
/// The per-vertex labels are read in the program sink and validated against
/// the single-rank min-id reference, so the output provably matches the
/// BFS-sweep labeling it replaced (both converge to component = min id).
///
///   ./connected_components [--scale=14] [--nodes=2]

#include <iostream>
#include <map>
#include <span>
#include <vector>

#include "engine/engine.hpp"
#include "graph/reference_algos.hpp"
#include "harness/graph500.hpp"
#include "harness/options.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(opt.get_int_min("scale", 14, 1));
  harness::ExperimentOptions eo;
  eo.nodes = opt.get_int("nodes", 2);
  eo.ppn = 8;
  harness::Experiment exp(bundle, eo);

  const graph::Csr& g = bundle.csr;
  const std::uint64_t n = g.num_vertices();

  // One components query: the program sink reads the converged per-vertex
  // labels (component = minimum vertex id) before the state is torn down.
  const bfs::Config cfg = bfs::granularity(256);
  engine::EngineConfig ec;
  ec.track_parents = false;
  std::vector<engine::Value> label;
  int levels = 0;
  ec.program_sink = [&](const engine::Query&, const engine::ProgramResult& res,
                        engine::ProgramState& ps) {
    label = engine::gather_values(exp.dist(), ps);
    levels = res.levels;
  };
  engine::QueryEngine eng(exp.cluster(), exp.dist(), cfg, ec);

  engine::Query q;
  q.kind = engine::QueryKind::components;
  const engine::EngineReport rep = eng.serve(std::span<const engine::Query>(&q, 1));
  const std::uint64_t ncomp =
      static_cast<std::uint64_t>(rep.results[0].value);

  // The propagation fixpoint must reproduce the BFS-sweep labeling exactly:
  // both assign every vertex the minimum id of its component.
  const auto ref = graph::ref_components(g);
  for (std::uint64_t v = 0; v < n; ++v) {
    if (label[v] != ref[v]) {
      std::cerr << "label mismatch at vertex " << v << ": " << label[v]
                << " != " << ref[v] << "\n";
      return 1;
    }
  }

  std::uint64_t singletons = 0;
  for (std::uint64_t v = 0; v < n; ++v)
    singletons += g.degree(static_cast<graph::Vertex>(v)) == 0;

  std::map<std::uint64_t, std::uint64_t> size_histogram;  // size -> count
  {
    std::map<std::uint64_t, std::uint64_t> size_of;  // label -> size
    for (std::uint64_t v = 0; v < n; ++v) ++size_of[label[v]];
    for (const auto& [lbl, size] : size_of) ++size_histogram[size];
  }

  std::cout << "graph: scale " << bundle.params.scale << ", " << n
            << " vertices\n"
            << "components: " << ncomp << " (" << singletons
            << " isolated vertices), labeled by one " << levels
            << "-level min-label program (validated against the BFS-sweep"
               " reference)\n"
            << "virtual time total: " << rep.total_ns / 1e6 << " ms\n\n";

  harness::Table t({"component size", "count"});
  // Largest few first, then the dust.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rows(
      size_histogram.rbegin(), size_histogram.rend());
  for (size_t i = 0; i < rows.size() && i < 10; ++i)
    t.row({std::to_string(rows[i].first), std::to_string(rows[i].second)});
  t.print(std::cout);

  const double giant =
      static_cast<double>(rows.front().first) / static_cast<double>(n);
  std::cout << "\ngiant component: " << harness::Table::pct(giant)
            << " of all vertices (scale-free graphs concentrate here — the"
               " reason Graph500 roots are sampled from non-isolated"
               " vertices)\n";
  return 0;
}
