/// \file connected_components.cpp
/// BFS as a building block (the paper's motivation: spanning trees,
/// connected components, shortest paths all reduce to BFS): label the
/// connected components of an R-MAT graph by repeated distributed BFS and
/// print the size distribution — R-MAT graphs have one giant component and
/// a dust of tiny ones.
///
///   ./connected_components [--scale=14] [--nodes=2]

#include <algorithm>
#include <iostream>
#include <map>

#include "bfs/hybrid.hpp"
#include "bfs/state.hpp"
#include "harness/graph500.hpp"
#include "harness/options.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(opt.get_int_min("scale", 14, 1));
  harness::ExperimentOptions eo;
  eo.nodes = opt.get_int("nodes", 2);
  eo.ppn = 8;
  harness::Experiment exp(bundle, eo);

  const graph::Csr& g = bundle.csr;
  const std::uint64_t n = g.num_vertices();
  std::vector<std::uint32_t> component(n, 0);  // 0 = unlabeled
  std::uint32_t next_label = 0;
  double virtual_ns = 0;

  // Repeated BFS: each unlabeled, non-isolated vertex seeds a component.
  // (Isolated vertices become singleton components without a BFS.)
  bfs::Config cfg = bfs::granularity(256);
  bfs::DistState st(exp.dist(), cfg, eo.nodes, eo.ppn);
  std::uint64_t singletons = 0;
  std::map<std::uint64_t, std::uint64_t> size_histogram;  // size -> count

  for (std::uint64_t v = 0; v < n; ++v) {
    if (component[v] != 0) continue;
    ++next_label;
    if (g.degree(static_cast<graph::Vertex>(v)) == 0) {
      component[v] = next_label;
      ++singletons;
      ++size_histogram[1];
      continue;
    }
    const bfs::BfsRunResult r =
        bfs::run_bfs(exp.cluster(), exp.dist(), st,
                     static_cast<graph::Vertex>(v));
    virtual_ns += r.time_ns;
    const auto parent = bfs::gather_parents(exp.dist(), st);
    std::uint64_t size = 0;
    for (std::uint64_t u = 0; u < n; ++u)
      if (parent[u] != graph::kNoVertex) {
        // Sanity: BFS must not leak into already-labeled components.
        if (component[u] != 0) {
          std::cerr << "component overlap at vertex " << u << "\n";
          return 1;
        }
        component[u] = next_label;
        ++size;
      }
    ++size_histogram[size];
  }

  std::uint64_t labeled = 0;
  for (std::uint64_t v = 0; v < n; ++v) labeled += component[v] != 0;
  if (labeled != n) {
    std::cerr << "not all vertices labeled\n";
    return 1;
  }

  std::cout << "graph: scale " << bundle.params.scale << ", " << n
            << " vertices\n"
            << "components: " << next_label << " (" << singletons
            << " isolated vertices)\n"
            << "virtual BFS time total: " << virtual_ns / 1e6 << " ms\n\n";

  harness::Table t({"component size", "count"});
  // Largest few first, then the dust.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rows(
      size_histogram.rbegin(), size_histogram.rend());
  for (size_t i = 0; i < rows.size() && i < 10; ++i)
    t.row({std::to_string(rows[i].first), std::to_string(rows[i].second)});
  t.print(std::cout);

  const double giant =
      static_cast<double>(rows.front().first) / static_cast<double>(n);
  std::cout << "\ngiant component: " << harness::Table::pct(giant)
            << " of all vertices (scale-free graphs concentrate here — the"
               " reason Graph500 roots are sampled from non-isolated"
               " vertices)\n";
  return 0;
}
