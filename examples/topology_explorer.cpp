/// \file topology_explorer.cpp
/// Interactive what-if tool for the NUMA cluster model: build a topology,
/// price the memory-access classes and the collective plans on it, and see
/// how the paper's trade-offs move when the hardware changes (socket
/// count, NIC ports, cache size, weak nodes).
///
///   ./topology_explorer --nodes=16 --sockets=8 --ports=2 [--weak-node=15]

#include <iostream>

#include "harness/options.hpp"
#include "harness/table.hpp"
#include "runtime/coll_model.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);

  sim::Topology::Params tp;
  tp.nodes = opt.get_int("nodes", 16);
  tp.sockets_per_node = opt.get_int("sockets", 8);
  tp.cores_per_socket = opt.get_int("cores", 8);
  tp.nic_ports_per_node = opt.get_int("ports", 2);
  tp.llc_bytes_per_socket = opt.get_u64("llc-mb", 18) << 20;
  if (opt.has("weak-node")) {
    tp.weak_node = opt.get_int("weak-node", -1);
    tp.weak_node_factor = opt.get_double_in("weak-factor", 0.5, 0.0, 1.0, true);
  }
  const sim::Topology topo(tp);
  const sim::CostParams cp;
  std::cout << topo.describe() << "\n";

  rt::Cluster cluster(topo, cp, tp.sockets_per_node);
  const sim::MemModel& mem = cluster.mem();

  // --- memory-access pricing under each placement -----------------------
  std::cout << "random-probe cost into a 512 MB structure (ns/probe):\n";
  harness::Table probes({"placement", "private (1 socket)", "node-shared"});
  for (sim::Placement p :
       {sim::Placement::socket_local, sim::Placement::interleaved,
        sim::Placement::single_home}) {
    probes.row({sim::to_string(p),
                harness::Table::fmt(
                    mem.probe_ns(p, 512ull << 20, 1, true), 1),
                harness::Table::fmt(
                    mem.probe_ns(sim::Placement::node_shared, 512ull << 20,
                                 tp.sockets_per_node, true),
                    1)});
  }
  probes.print(std::cout);

  // --- collective plans for a scale-30 in_queue -------------------------
  const std::uint64_t in_queue = 1ull << 30 >> 3;  // 128 MB
  const std::uint64_t chunk = in_queue / static_cast<std::uint64_t>(
                                             cluster.nranks());
  std::cout << "\nallgather plans for a " << (in_queue >> 20)
            << " MB in_queue (" << cluster.nranks() << " processes):\n";
  namespace cm = rt::coll_model;
  harness::Table plans({"plan", "gather", "inter", "bcast", "total"});
  const auto row = [&](const char* name, const cm::CollTimes& t) {
    plans.row({name, harness::Table::ms(t.gather_ns, 1),
               harness::Table::ms(t.inter_ns, 1),
               harness::Table::ms(t.bcast_ns, 1),
               harness::Table::ms(t.total_ns, 1)});
  };
  row("default flat ring", cm::flat_ring(cluster, chunk));
  row("leader-based", cm::leader_allgather(cluster, chunk, true, true, 1));
  row("+ share in_queue", cm::leader_allgather(cluster, chunk, true, false, 1));
  row("+ share all", cm::leader_allgather(cluster, chunk, false, false, 1));
  row("+ parallel subgroups",
      cm::leader_allgather(cluster, chunk, false, false, tp.sockets_per_node));
  plans.print(std::cout);

  // --- NIC saturation ----------------------------------------------------
  std::cout << "\nnode NIC bandwidth vs concurrent flows:\n";
  harness::Table nic({"flows", "aggregate", "per flow"});
  for (int f : {1, 2, 4, 8, 16}) {
    nic.row({std::to_string(f),
             harness::Table::fmt(cluster.link().nic_node_bw(f), 2) + " GB/s",
             harness::Table::fmt(cluster.link().nic_flow_bw(f), 2) + " GB/s"});
  }
  nic.print(std::cout);

  std::cout << "\ntip: rerun with --sockets=4, --ports=1 or --weak-node=0 to"
               " see how the paper's trade-offs move.\n";
  return 0;
}
