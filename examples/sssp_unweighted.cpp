/// \file sssp_unweighted.cpp
/// Unweighted single-source shortest paths via BFS — another of the
/// paper's motivating BFS clients. Runs the distributed hybrid BFS, derives
/// hop distances from the parent tree, prints the distance histogram
/// (the small-world shape of R-MAT graphs) and answers point queries.
///
///   ./sssp_unweighted [--scale=15] [--nodes=2] [--source=V] [--target=V]

#include <iostream>

#include "bfs/hybrid.hpp"
#include "harness/graph500.hpp"
#include "harness/options.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace numabfs;
  harness::Options opt(argc, argv);

  const harness::GraphBundle bundle =
      harness::GraphBundle::make(opt.get_int_min("scale", 15, 1));
  harness::ExperimentOptions eo;
  eo.nodes = opt.get_int("nodes", 2);
  eo.ppn = 8;
  harness::Experiment exp(bundle, eo);

  const auto source = static_cast<graph::Vertex>(
      opt.get_u64("source", bundle.roots.front()));
  if (bundle.csr.degree(source) == 0) {
    std::cerr << "source " << source << " is isolated; pick another\n";
    return 1;
  }

  const auto [result, parent] = exp.run_validated(bfs::granularity(256), source);

  // Hop distances by chasing parents (memoized through the level count —
  // parents always point one level up, so depth(v) = depth(parent)+1).
  const std::uint64_t n = bundle.csr.num_vertices();
  constexpr std::uint32_t kUnreached = 0xffffffffu;
  std::vector<std::uint32_t> dist(n, kUnreached);
  dist[source] = 0;
  // BFS levels bound the depth, so |levels| passes suffice.
  for (int pass = 0; pass < result.levels + 1; ++pass) {
    bool changed = false;
    for (std::uint64_t v = 0; v < n; ++v) {
      if (dist[v] != kUnreached || parent[v] == graph::kNoVertex) continue;
      const graph::Vertex par = parent[v];
      if (dist[par] != kUnreached) {
        dist[v] = dist[par] + 1;
        changed = true;
      }
    }
    if (!changed) break;
  }

  std::vector<std::uint64_t> histogram;
  std::uint64_t reached = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (dist[v] == kUnreached) continue;
    ++reached;
    if (dist[v] >= histogram.size()) histogram.resize(dist[v] + 1, 0);
    ++histogram[dist[v]];
  }

  std::cout << "source " << source << " reaches " << reached << " of " << n
            << " vertices in " << histogram.size() - 1
            << " hops (virtual BFS time " << result.time_ns / 1e6 << " ms)\n\n";
  harness::Table t({"hops", "vertices", "share"});
  for (size_t d = 0; d < histogram.size(); ++d)
    t.row({std::to_string(d), std::to_string(histogram[d]),
           harness::Table::pct(static_cast<double>(histogram[d]) /
                               static_cast<double>(reached))});
  t.print(std::cout);
  std::cout << "\n(the mass concentrates in 3-5 hops — the small-world "
               "property that makes BFS communication-bound)\n";

  if (opt.has("target")) {
    const auto target = static_cast<graph::Vertex>(opt.get_u64("target", 0));
    if (target >= n || dist[target] == kUnreached) {
      std::cout << "\ntarget " << target << ": unreachable from " << source
                << "\n";
    } else {
      std::cout << "\nshortest path " << source << " -> " << target << " ("
                << dist[target] << " hops): ";
      std::vector<graph::Vertex> path;
      for (graph::Vertex v = target; v != source; v = parent[v])
        path.push_back(v);
      path.push_back(source);
      for (auto it = path.rbegin(); it != path.rend(); ++it)
        std::cout << *it << (it + 1 == path.rend() ? "\n" : " -> ");
    }
  }
  return 0;
}
